//! Decision-surface drift detection for continuous PGO.
//!
//! A long-lived re-optimization service (the `pibe-serve` crate) ingests a
//! stream of profile deltas. Most epochs only nudge counters that no
//! optimization decision depends on — rebuilding the image from scratch for
//! those epochs wastes the whole epoch budget. This module computes, for a
//! fixed base module and pipeline configuration, the **decision surface** of
//! a profile: the exact outputs of every profile-driven selection the
//! pipeline makes. Two profiles with equal surfaces drive the pipeline
//! through *identical* decision sequences and therefore produce
//! *bit-identical* images; a surface change pinpoints the functions whose
//! hotness crossed an optimization-decision threshold.
//!
//! Why the surface must replicate selections exactly, not approximate them
//! by rank: budget prefixes depend on the *total* population weight, the
//! inliner compares *computed* propagated weights (`round(w × ε / entries)`)
//! against the selection floor, and boundary ties break on the pass's own
//! candidate order — all of which make any rank- or ratio-based abstraction
//! unsound (a uniform ×2 scale can flip a rounded propagated weight across
//! the floor). The surface therefore stores:
//!
//! * **ICP**: the promoted sites in promotion order with their promoted
//!   `(fresh site, target, weight)` lists — fresh [`SiteId`]s are assigned
//!   here exactly as the pass assigns them, so downstream facts can refer
//!   to promoted sites across epochs;
//! * **inlining**: the budget-selected candidate prefix (with the pass's
//!   exact `(weight, site, caller, callee)` ordering), the selection floor,
//!   the lax floor, and — because propagation reads callee entry counts and
//!   copied-site weights — the exact per-function facts for the transitive
//!   callee closure of the selected candidates;
//! * **DCE**: the profile-coverage root and address-taken function sets.
//!
//! Equality of all components is a proof of decision equality; the serve
//! soak additionally cross-checks every epoch against a from-scratch build
//! with the difftest bit-identity oracle.

use crate::budget::{Budget, BudgetRanking};
use crate::profile::Profile;
use pibe_ir::{FuncId, Inst, Module, SiteId};
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

/// Immutable facts about the base module that profile-driven selection
/// consults, precomputed once so per-epoch surface computation never walks
/// function bodies.
#[derive(Debug, Clone)]
pub struct ModuleIndex {
    /// Number of functions in the module (profile keys at or past this
    /// index are out of range).
    nfuncs: usize,
    /// The next fresh [`SiteId`] the module would allocate — ICP fresh-site
    /// replication starts here.
    next_site: u64,
    /// Every direct call site: `(owner, static callee)`.
    direct: HashMap<SiteId, (FuncId, FuncId)>,
    /// Every unresolved indirect call site: `(owner, is_asm, owner_optnone)`.
    indirect: HashMap<SiteId, (FuncId, bool, bool)>,
    /// Per-function direct call sites `(site, callee)`, in body order.
    direct_by_owner: Vec<Vec<(SiteId, FuncId)>>,
}

impl ModuleIndex {
    /// Indexes `module`. The index is only valid for surfaces computed
    /// against this exact module (the serve loop holds one base module for
    /// its whole lifetime).
    pub fn new(module: &Module) -> Self {
        let nfuncs = module.len();
        let mut direct = HashMap::new();
        let mut indirect = HashMap::new();
        let mut direct_by_owner = vec![Vec::new(); nfuncs];
        for f in module.functions() {
            let optnone = f.attrs().optnone;
            // Flat pool scan: tombstones are plain ops and cannot match.
            for inst in f.insts() {
                match inst {
                    Inst::Call { site, callee, .. } => {
                        direct.insert(*site, (f.id(), *callee));
                        direct_by_owner[f.id().index()].push((*site, *callee));
                    }
                    Inst::CallIndirect {
                        site,
                        resolved: false,
                        asm,
                        ..
                    } => {
                        indirect.insert(*site, (f.id(), *asm, optnone));
                    }
                    _ => {}
                }
            }
        }
        ModuleIndex {
            nfuncs,
            next_site: module.peek_next_site(),
            direct,
            indirect,
            direct_by_owner,
        }
    }

    /// Number of functions in the indexed module.
    pub fn num_functions(&self) -> usize {
        self.nfuncs
    }
}

/// ICP selection knobs, mirroring `pibe_passes::IcpConfig` (kept as plain
/// fields so the profile crate does not depend on the passes crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IcpSpec {
    /// Budget over cumulative `(site, target)` weight.
    pub budget: Budget,
    /// Per-site promoted-target cap (`None` = PIBE's unlimited).
    pub max_targets_per_site: Option<usize>,
}

/// Inliner selection knobs, mirroring `pibe_passes::InlinerConfig`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InlineSpec {
    /// Rule 1 budget over cumulative direct-call weight.
    pub budget: Budget,
    /// The lax-heuristics prefix budget, when lax mode is on.
    pub lax_budget: Option<Budget>,
}

/// Which profile-driven selections the pipeline configuration enables —
/// the drift analysis only tracks decisions a disabled stage cannot make.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DriftConfig {
    /// Indirect call promotion, when enabled.
    pub icp: Option<IcpSpec>,
    /// Security inlining, when enabled.
    pub inline: Option<InlineSpec>,
    /// Whether profile-coverage DCE runs.
    pub dce: bool,
}

/// One promoted indirect site: the site, its owner, and the ordered
/// promoted targets with the fresh direct-call [`SiteId`]s the pass will
/// allocate for them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IcpSiteDecision {
    /// The promoted indirect call site.
    pub site: SiteId,
    /// The function owning the site.
    pub owner: FuncId,
    /// `(fresh site, target, weight)` in guard-chain order.
    pub promos: Vec<(SiteId, FuncId, u64)>,
}

/// One budget-selected inline candidate, with the pass's exact field and
/// tie order (`weight`, then `site`, then `caller`, then `callee`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct InlineCandidate {
    /// Profiled (or promoted, or propagated) execution weight.
    pub weight: u64,
    /// The direct call site.
    pub site: SiteId,
    /// The calling function.
    pub caller: FuncId,
    /// The static callee.
    pub callee: FuncId,
}

/// The exact per-function facts inline propagation reads: the callee's
/// invocation count and the weights of every direct call site it owns.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ClosureFacts {
    /// `profile.entry_count` of the function.
    pub entry_count: u64,
    /// `(site, weight)` of every direct call site the function owns
    /// (original body sites plus ICP-promoted sites), sorted by site.
    pub site_weights: Vec<(SiteId, u64)>,
}

/// The full decision surface of a `(base module, profile, config)` triple.
///
/// Equality of two surfaces computed over the same [`ModuleIndex`] and
/// [`DriftConfig`] implies the pipeline makes identical decisions for both
/// profiles, hence produces bit-identical images.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DecisionSurface {
    /// Promoted sites in promotion order (order-sensitive: it drives
    /// fresh-site allocation).
    pub icp: Vec<IcpSiteDecision>,
    /// The inliner's budget-selected prefix, hottest first.
    pub inline_selected: Vec<InlineCandidate>,
    /// The coldest selected weight (`u64::MAX` when nothing is selected).
    pub inline_floor: u64,
    /// The lax-heuristics exemption floor (`u64::MAX` when lax is off).
    pub lax_floor: u64,
    /// Propagation facts for the transitive callee closure of the selected
    /// candidates, keyed by function.
    pub closure: BTreeMap<FuncId, ClosureFacts>,
    /// Profile-coverage DCE roots (entry-profiled functions in range).
    pub dce_roots: BTreeSet<FuncId>,
    /// True when the root set is empty and DCE therefore roots every
    /// function.
    pub dce_all_roots: bool,
    /// Value-profile target functions DCE treats as address-taken.
    pub dce_taken: BTreeSet<FuncId>,
}

impl DecisionSurface {
    /// Computes the decision surface of `profile` over `index` under
    /// `config`.
    pub fn compute(index: &ModuleIndex, profile: &Profile, config: &DriftConfig) -> Self {
        let mut surface = DecisionSurface {
            inline_floor: u64::MAX,
            lax_floor: u64::MAX,
            ..DecisionSurface::default()
        };
        if let Some(spec) = &config.icp {
            surface.icp = icp_decisions(index, profile, spec);
        }
        if let Some(spec) = &config.inline {
            let icp = std::mem::take(&mut surface.icp);
            inline_surface(index, profile, spec, &icp, &mut surface);
            surface.icp = icp;
        }
        if config.dce {
            let nfuncs = index.nfuncs;
            for (f, _) in profile.iter_entries() {
                if f.index() < nfuncs {
                    surface.dce_roots.insert(f);
                }
            }
            surface.dce_all_roots = surface.dce_roots.is_empty();
            for (_, entries) in profile.iter_indirect() {
                for e in entries {
                    if e.target.index() < nfuncs {
                        surface.dce_taken.insert(e.target);
                    }
                }
            }
        }
        surface
    }

    /// Diffs two surfaces computed over the same index and config,
    /// attributing changes to functions.
    pub fn diff(&self, newer: &DecisionSurface) -> DriftReport {
        let mut report = DriftReport {
            unchanged: self == newer,
            ..DriftReport::default()
        };
        if report.unchanged {
            return report;
        }
        // ICP: sites whose promotion decision (or position) changed.
        let as_map = |v: &[IcpSiteDecision]| -> HashMap<SiteId, (usize, IcpSiteDecision)> {
            v.iter()
                .enumerate()
                .map(|(i, d)| (d.site, (i, d.clone())))
                .collect()
        };
        let old_icp = as_map(&self.icp);
        let new_icp = as_map(&newer.icp);
        for (site, (pos, d)) in &old_icp {
            if new_icp.get(site).map(|(p, n)| (p, n)) != Some((pos, d)) {
                report.icp_sites_changed += 1;
                report.drifted.insert(d.owner);
            }
        }
        for (site, (_, d)) in &new_icp {
            if !old_icp.contains_key(site) {
                report.icp_sites_changed += 1;
                report.drifted.insert(d.owner);
            }
        }
        // Inlining: symmetric difference of the selected prefixes, plus
        // everything selected when a floor moved (floor changes can flip
        // propagation decisions in any selected caller).
        let old_sel: BTreeSet<&InlineCandidate> = self.inline_selected.iter().collect();
        let new_sel: BTreeSet<&InlineCandidate> = newer.inline_selected.iter().collect();
        for c in old_sel.symmetric_difference(&new_sel) {
            report.inline_candidates_changed += 1;
            report.drifted.insert(c.caller);
        }
        if self.inline_floor != newer.inline_floor || self.lax_floor != newer.lax_floor {
            report.floors_changed = true;
            for c in old_sel.union(&new_sel) {
                report.drifted.insert(c.caller);
            }
        }
        for (f, facts) in &self.closure {
            if newer.closure.get(f) != Some(facts) {
                report.closure_functions_changed += 1;
                report.drifted.insert(*f);
            }
        }
        for f in newer.closure.keys() {
            if !self.closure.contains_key(f) {
                report.closure_functions_changed += 1;
                report.drifted.insert(*f);
            }
        }
        // DCE: set-level change affects the whole image numbering.
        if self.dce_roots != newer.dce_roots
            || self.dce_all_roots != newer.dce_all_roots
            || self.dce_taken != newer.dce_taken
        {
            report.dce_changed = true;
            for f in self.dce_roots.symmetric_difference(&newer.dce_roots) {
                report.drifted.insert(*f);
            }
            for f in self.dce_taken.symmetric_difference(&newer.dce_taken) {
                report.drifted.insert(*f);
            }
        }
        report
    }
}

/// What changed between two epochs' decision surfaces.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DriftReport {
    /// True when the surfaces are identical — the pipeline would make the
    /// exact same decisions, so the previous image can be served as-is.
    pub unchanged: bool,
    /// Functions whose optimization decisions changed (attribution for
    /// reporting; correctness rests only on `unchanged`).
    pub drifted: BTreeSet<FuncId>,
    /// Promoted indirect sites added, removed, or reordered.
    pub icp_sites_changed: usize,
    /// Inline candidates entering or leaving the selected prefix.
    pub inline_candidates_changed: usize,
    /// Closure functions whose propagation facts changed.
    pub closure_functions_changed: usize,
    /// True when a selection or lax floor moved.
    pub floors_changed: bool,
    /// True when the DCE root or address-taken set changed.
    pub dce_changed: bool,
}

impl DriftReport {
    /// Number of functions whose decisions drifted.
    pub fn drifted_functions(&self) -> usize {
        self.drifted.len()
    }
}

/// Replicates ICP selection exactly: candidate gathering, budget
/// selection, per-site grouping with the target cap, skip rules, and
/// fresh-site allocation order.
fn icp_decisions(index: &ModuleIndex, profile: &Profile, spec: &IcpSpec) -> Vec<IcpSiteDecision> {
    let mut candidates: Vec<((SiteId, FuncId), u64)> = Vec::new();
    for (site, entries) in profile.iter_indirect() {
        for e in entries {
            candidates.push(((site, e.target), e.count));
        }
    }
    let selected = crate::budget::select_by_budget(&candidates, spec.budget);

    let mut per_site: HashMap<SiteId, Vec<(FuncId, u64)>> = HashMap::new();
    let mut site_order: Vec<SiteId> = Vec::new();
    for ((site, target), w) in selected {
        let entry = per_site.entry(site).or_default();
        if entry.is_empty() {
            site_order.push(site);
        }
        if spec
            .max_targets_per_site
            .is_none_or(|cap| entry.len() < cap)
        {
            entry.push((target, w));
        }
    }

    let mut next = index.next_site;
    let mut decisions = Vec::new();
    for site in site_order {
        // Skip rules allocate no fresh sites, in the pass's order: unknown
        // site, optnone owner, inline-asm site.
        let Some(&(owner, asm, optnone)) = index.indirect.get(&site) else {
            continue;
        };
        if optnone || asm {
            continue;
        }
        let promos = per_site[&site]
            .iter()
            .map(|(t, w)| {
                let fresh = SiteId::from_raw(next);
                next += 1;
                (fresh, *t, *w)
            })
            .collect();
        decisions.push(IcpSiteDecision {
            site,
            owner,
            promos,
        });
    }
    decisions
}

/// Replicates the inliner's Rule 1 selection over the post-ICP candidate
/// population and collects the propagation closure facts.
fn inline_surface(
    index: &ModuleIndex,
    profile: &Profile,
    spec: &InlineSpec,
    icp: &[IcpSiteDecision],
    surface: &mut DecisionSurface,
) {
    // Candidate population: every profiled direct call site of the base
    // module plus every ICP-promoted site. Zero-weight sites are inert
    // (never selected, contribute no budget weight) and are omitted.
    let mut population: Vec<(InlineCandidate, u64)> = Vec::new();
    for (&site, &(owner, callee)) in &index.direct {
        let w = profile.direct_count(site);
        if w > 0 {
            population.push((
                InlineCandidate {
                    weight: w,
                    site,
                    caller: owner,
                    callee,
                },
                w,
            ));
        }
    }
    let mut promos_by_owner: HashMap<FuncId, Vec<(SiteId, FuncId, u64)>> = HashMap::new();
    for d in icp {
        for &(fresh, target, w) in &d.promos {
            promos_by_owner
                .entry(d.owner)
                .or_default()
                .push((fresh, target, w));
            if w > 0 {
                population.push((
                    InlineCandidate {
                        weight: w,
                        site: fresh,
                        caller: d.owner,
                        callee: target,
                    },
                    w,
                ));
            }
        }
    }

    let ranking = BudgetRanking::new(&population);
    let selected = ranking.selected(spec.budget);
    surface.inline_selected = selected.iter().map(|(c, _)| *c).collect();
    surface.inline_floor = selected.last().map(|(_, w)| *w).unwrap_or(u64::MAX);
    surface.lax_floor = spec
        .lax_budget
        .map(|b| ranking.floor(b).unwrap_or(u64::MAX))
        .unwrap_or(u64::MAX);

    // Propagation facts: inlining a candidate copies the callee's direct
    // sites (with their original ids) into the caller and re-ranks them by
    // `round(site_weight × cand.weight / entry_count(callee))`, so the
    // decisions reachable from the selected set depend on the entry counts
    // and site weights of the transitive callee closure over the post-ICP
    // direct-call graph.
    let mut queue: VecDeque<FuncId> = surface.inline_selected.iter().map(|c| c.callee).collect();
    let mut seen: BTreeSet<FuncId> = BTreeSet::new();
    while let Some(f) = queue.pop_front() {
        if f.index() >= index.nfuncs || !seen.insert(f) {
            continue;
        }
        let mut facts = ClosureFacts {
            entry_count: profile.entry_count(f),
            site_weights: Vec::new(),
        };
        for &(site, callee) in &index.direct_by_owner[f.index()] {
            let w = profile.direct_count(site);
            if w > 0 {
                facts.site_weights.push((site, w));
            }
            queue.push_back(callee);
        }
        if let Some(promos) = promos_by_owner.get(&f) {
            for &(fresh, target, w) in promos {
                if w > 0 {
                    facts.site_weights.push((fresh, w));
                }
                queue.push_back(target);
            }
        }
        facts.site_weights.sort_unstable();
        surface.closure.insert(f, facts);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pibe_ir::{FunctionBuilder, OpKind};

    /// leaf0, leaf1, mid (calls leaf0), root (calls mid, icall site).
    fn fixture() -> (Module, Profile, Vec<SiteId>, SiteId) {
        let mut m = Module::new("m");
        let mut leaves = Vec::new();
        for i in 0..2 {
            let mut b = FunctionBuilder::new(format!("leaf{i}"), 0);
            b.op(OpKind::Alu);
            b.ret();
            leaves.push(m.add_function(b.build()));
        }
        let s_mid_leaf = m.fresh_site();
        let mut b = FunctionBuilder::new("mid", 0);
        b.call(s_mid_leaf, leaves[0], 0);
        b.ret();
        let mid = m.add_function(b.build());
        let s_root_mid = m.fresh_site();
        let s_icall = m.fresh_site();
        let mut b = FunctionBuilder::new("root", 0);
        b.call(s_root_mid, mid, 0);
        b.call_indirect(s_icall, 0);
        b.ret();
        m.add_function(b.build());

        let mut p = Profile::new();
        for _ in 0..1000 {
            p.record_direct(s_root_mid);
            p.record_entry(mid);
        }
        for _ in 0..800 {
            p.record_direct(s_mid_leaf);
            p.record_entry(leaves[0]);
        }
        for _ in 0..600 {
            p.record_indirect(s_icall, leaves[1]);
            p.record_entry(leaves[1]);
        }
        (m, p, vec![s_root_mid, s_mid_leaf], s_icall)
    }

    fn config() -> DriftConfig {
        DriftConfig {
            icp: Some(IcpSpec {
                budget: Budget::P99_999,
                max_targets_per_site: None,
            }),
            inline: Some(InlineSpec {
                budget: Budget::P99_9,
                lax_budget: None,
            }),
            dce: true,
        }
    }

    #[test]
    fn surface_is_deterministic() {
        let (m, p, _, _) = fixture();
        let idx = ModuleIndex::new(&m);
        let a = DecisionSurface::compute(&idx, &p, &config());
        let b = DecisionSurface::compute(&idx, &p, &config());
        assert_eq!(a, b);
        assert!(a.diff(&b).unchanged);
        assert!(!a.icp.is_empty());
        assert!(!a.inline_selected.is_empty());
        assert!(!a.closure.is_empty());
    }

    #[test]
    fn icp_fresh_sites_start_at_module_watermark() {
        let (m, p, _, _) = fixture();
        let idx = ModuleIndex::new(&m);
        let s = DecisionSurface::compute(&idx, &p, &config());
        let first = s.icp[0].promos[0].0;
        assert_eq!(first, SiteId::from_raw(m.peek_next_site()));
    }

    #[test]
    fn hot_count_change_drifts() {
        let (m, p, sites, _) = fixture();
        let idx = ModuleIndex::new(&m);
        let before = DecisionSurface::compute(&idx, &p, &config());
        let mut p2 = p.clone();
        p2.record_direct(sites[0]); // hottest selected site: exact weight is on the surface
        let after = DecisionSurface::compute(&idx, &p2, &config());
        let report = before.diff(&after);
        assert!(!report.unchanged);
        assert!(report.drifted_functions() >= 1);
    }

    #[test]
    fn decision_irrelevant_count_change_does_not_drift() {
        let (m, p, _, _) = fixture();
        let idx = ModuleIndex::new(&m);
        let before = DecisionSurface::compute(&idx, &p, &config());
        let mut p2 = p.clone();
        // Returns feed no selection; entry counts of already-rooted
        // non-closure functions only matter as a key set.
        let root_fn = FuncId::from_raw(3);
        p2.record_return(root_fn);
        let after = DecisionSurface::compute(&idx, &p2, &config());
        assert!(before.diff(&after).unchanged);
    }

    #[test]
    fn new_entry_key_drifts_dce_roots() {
        let (m, p, _, _) = fixture();
        let idx = ModuleIndex::new(&m);
        let before = DecisionSurface::compute(&idx, &p, &config());
        let mut p2 = p.clone();
        p2.record_entry(FuncId::from_raw(3)); // root was not a DCE root before
        let after = DecisionSurface::compute(&idx, &p2, &config());
        let report = before.diff(&after);
        assert!(!report.unchanged);
        assert!(report.dce_changed);
    }

    #[test]
    fn icp_respects_target_cap_and_asm_skip() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("t0", 0);
        b.ret();
        let t0 = m.add_function(b.build());
        let mut b = FunctionBuilder::new("t1", 0);
        b.ret();
        let t1 = m.add_function(b.build());
        let s_asm = m.fresh_site();
        let s_ok = m.fresh_site();
        let mut b = FunctionBuilder::new("root", 0);
        b.call_indirect_asm(s_asm, 0);
        b.call_indirect(s_ok, 0);
        b.ret();
        m.add_function(b.build());
        let mut p = Profile::new();
        for _ in 0..100 {
            p.record_indirect(s_asm, t0);
            p.record_indirect(s_ok, t0);
        }
        for _ in 0..50 {
            p.record_indirect(s_ok, t1);
        }
        let idx = ModuleIndex::new(&m);
        let cfg = DriftConfig {
            icp: Some(IcpSpec {
                budget: Budget::new(100.0).unwrap(),
                max_targets_per_site: Some(1),
            }),
            inline: None,
            dce: false,
        };
        let s = DecisionSurface::compute(&idx, &p, &cfg);
        // The asm site is skipped without consuming fresh ids; the capped
        // site promotes only its hottest target.
        assert_eq!(s.icp.len(), 1);
        assert_eq!(s.icp[0].site, s_ok);
        assert_eq!(s.icp[0].promos.len(), 1);
        assert_eq!(s.icp[0].promos[0].1, t0);
        assert_eq!(s.icp[0].promos[0].0, SiteId::from_raw(m.peek_next_site()));
    }
}
