//! # pibe-profile
//!
//! Call-graph edge and value profiles: the data the paper's profiling phase
//! collects and its hardening phase consumes (§4, §7).
//!
//! A [`Profile`] records, for one or more profiling runs:
//!
//! * per direct call site — an execution count,
//! * per indirect call site — a *value profile*: a list of
//!   `(target function, count)` tuples,
//! * per function — invocation and return-execution counts.
//!
//! Profiles serialize to JSON (mirroring the artifact's on-disk profile
//! files), merge across runs (the paper aggregates 11 LMBench iterations),
//! and support the *budget* arithmetic both of PIBE's optimizations use:
//! a [`Budget`] is a percentage of the cumulative execution count, and
//! [`select_by_budget`] returns the greedy hottest-first prefix of a
//! candidate list that covers it.
//!
//! The [`overlap`] module implements the workload-robustness measurement of
//! §8.4 (shared candidate weight between two workloads at a budget).
//!
//! Profiles can be stale (collected on a drifted build) or corrupt
//! (truncated documents, saturating merges). [`Profile::validate_against`]
//! detects those inconsistencies relative to a concrete module and
//! [`Profile::repair_against`] fixes them in place; the [`chaos`] module
//! deterministically *injects* them for fault-tolerance testing. Long-lived
//! accumulators use [`Profile::merge_checked`], which reports every counter
//! that saturated as a typed [`MergeOverflow`].
//!
//! For continuous PGO, the [`drift`] module computes a profile's *decision
//! surface* — the exact outputs of every budget selection the pipeline
//! makes — so a re-optimization service can prove that an epoch's profile
//! update changes no optimization decision and keep serving the previous
//! image.

//!
//! ## Example
//!
//! ```
//! use pibe_ir::{FuncId, SiteId};
//! use pibe_profile::{select_by_budget, Budget, Profile};
//!
//! let mut profile = Profile::new();
//! let hot = SiteId::from_raw(1);
//! let cold = SiteId::from_raw(2);
//! for _ in 0..990 {
//!     profile.record_direct(hot);
//! }
//! for _ in 0..10 {
//!     profile.record_direct(cold);
//! }
//! let candidates: Vec<(SiteId, u64)> = profile.iter_direct().collect();
//! let selected = select_by_budget(&candidates, Budget::P99);
//! assert_eq!(selected, vec![(hot, 990)], "99% of the weight is one site");
//!
//! // Profiles survive a serialization round trip.
//! let reloaded = Profile::from_json(&profile.to_json())?;
//! assert_eq!(profile, reloaded);
//! # Ok::<(), serde_json::Error>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
mod budget;
pub mod chaos;
pub mod drift;
mod health;
pub mod overlap;
mod profile;

pub use analysis::{direct_concentration, indirect_concentration, top_direct_sites, Concentration};
pub use budget::{select_by_budget, Budget, BudgetError, BudgetRanking};
pub use chaos::{corrupt_profile, ChaosRng, ProfileChaos};
pub use drift::{DecisionSurface, DriftConfig, DriftReport, IcpSpec, InlineSpec, ModuleIndex};
pub use health::{ProfileHealth, ProfileIssue, ProfileRepair, COUNT_CLAMP};
pub use profile::{MergeOverflow, MergeReport, Profile, ProfileStats, ValueProfileEntry};
