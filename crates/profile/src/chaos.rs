//! Deterministic profile fault injection (the `pibe-chaos` harness).
//!
//! Production PGO pipelines meet corrupt inputs constantly: profiles
//! collected on drifted builds, truncated documents, saturating merges.
//! This module *manufactures* those inputs, deterministically from a seed,
//! so the pipeline's validation/repair/rollback machinery can be exercised
//! by the thousands in tests (`crates/core/tests/chaos.rs`) without any
//! non-determinism.
//!
//! Each [`ProfileChaos`] kind plants exactly the class of corruption one
//! [`ProfileIssue`](crate::ProfileIssue) detector exists for, so strict
//! validation is guaranteed to catch every injected fault.

use crate::profile::{Profile, ValueProfileEntry};
use pibe_ir::{FuncId, Module, SiteId};
use std::fmt;

/// SplitMix64: a tiny, deterministic stream of pseudo-random `u64`s.
/// (Deliberately self-contained — chaos must not depend on RNG crates whose
/// streams could change.)
#[derive(Debug, Clone)]
pub struct ChaosRng(u64);

impl ChaosRng {
    /// Creates a stream from `seed`.
    pub fn new(seed: u64) -> Self {
        ChaosRng(seed)
    }

    /// The next value of the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A value in `0..bound` (`bound` must be nonzero).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// One kind of profile corruption the chaos harness can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProfileChaos {
    /// Insert a direct-call count keyed by a site the module doesn't have.
    DanglingDirectSite,
    /// Insert a value profile keyed by a site the module doesn't have.
    DanglingIndirectSite,
    /// Append a value-profile target naming a function outside the module.
    DanglingTarget,
    /// Append a duplicate of an existing value-profile target.
    DuplicateTarget,
    /// Truncate one value profile to zero entries (keeping the site key).
    TruncateValueProfile,
    /// Saturate one count to `u64::MAX` (a poisoned merge).
    SaturateCounts,
    /// Erase the whole profile (a failed profiling run).
    Erase,
}

impl ProfileChaos {
    /// Every corruption kind, in a fixed order.
    pub const ALL: [ProfileChaos; 7] = [
        ProfileChaos::DanglingDirectSite,
        ProfileChaos::DanglingIndirectSite,
        ProfileChaos::DanglingTarget,
        ProfileChaos::DuplicateTarget,
        ProfileChaos::TruncateValueProfile,
        ProfileChaos::SaturateCounts,
        ProfileChaos::Erase,
    ];

    /// Picks a corruption kind deterministically from `seed`.
    pub fn from_seed(seed: u64) -> Self {
        Self::ALL[(ChaosRng::new(seed).next_u64() % Self::ALL.len() as u64) as usize]
    }

    /// Applies this corruption to `profile` (which was collected against
    /// `module`), deterministically from `seed`. Returns `false` when the
    /// profile has no entry of the shape this corruption needs (e.g.
    /// duplicating a target in a profile with no value profiles), in which
    /// case the profile is unchanged.
    pub fn apply(self, profile: &mut Profile, module: &Module, seed: u64) -> bool {
        let mut rng = ChaosRng::new(seed ^ 0xC4A0_5CA0_5EED);
        // A site id the module has certainly never allocated.
        let ghost_site = SiteId::from_raw(module.peek_next_site() + 1 + rng.below(1 << 16));
        // A function id certainly outside the module.
        let ghost_func = FuncId::from_raw(module.len() as u32 + 1 + rng.below(1 << 10) as u32);

        // Deterministic pick of an existing indirect site, if any.
        let pick_indirect = |p: &Profile, rng: &mut ChaosRng| -> Option<SiteId> {
            let mut sites: Vec<SiteId> = p.iter_indirect().map(|(s, _)| s).collect();
            if sites.is_empty() {
                return None;
            }
            sites.sort();
            Some(sites[rng.below(sites.len() as u64) as usize])
        };

        match self {
            ProfileChaos::DanglingDirectSite => {
                let (direct, ..) = profile.raw_mut();
                direct.insert(ghost_site, 1 + rng.below(1 << 20));
                true
            }
            ProfileChaos::DanglingIndirectSite => {
                let target = FuncId::from_raw(rng.below(module.len().max(1) as u64) as u32);
                let (_, indirect, ..) = profile.raw_mut();
                indirect.insert(
                    ghost_site,
                    vec![ValueProfileEntry {
                        target,
                        count: 1 + rng.below(1 << 20),
                    }],
                );
                true
            }
            ProfileChaos::DanglingTarget => {
                let Some(site) = pick_indirect(profile, &mut rng) else {
                    return false;
                };
                // A huge count makes the dangling target the hottest
                // promotion candidate: the worst case for an unvalidated
                // pipeline (the promoted call's callee does not exist).
                let count = 1 << 40;
                let (_, indirect, ..) = profile.raw_mut();
                indirect
                    .get_mut(&site)
                    .expect("picked site exists")
                    .push(ValueProfileEntry {
                        target: ghost_func,
                        count,
                    });
                true
            }
            ProfileChaos::DuplicateTarget => {
                let Some(site) = pick_indirect(profile, &mut rng) else {
                    return false;
                };
                let (_, indirect, ..) = profile.raw_mut();
                let vp = indirect.get_mut(&site).expect("picked site exists");
                let Some(&first) = vp.first() else {
                    return false;
                };
                vp.push(first);
                true
            }
            ProfileChaos::TruncateValueProfile => {
                let Some(site) = pick_indirect(profile, &mut rng) else {
                    return false;
                };
                let (_, indirect, ..) = profile.raw_mut();
                indirect.get_mut(&site).expect("picked site exists").clear();
                true
            }
            ProfileChaos::SaturateCounts => {
                // Prefer a direct count; fall back to a value-profile count.
                let mut sites: Vec<SiteId> = profile.iter_direct().map(|(s, _)| s).collect();
                sites.sort();
                if !sites.is_empty() {
                    let site = sites[rng.below(sites.len() as u64) as usize];
                    let (direct, ..) = profile.raw_mut();
                    direct.insert(site, u64::MAX);
                    return true;
                }
                let Some(site) = pick_indirect(profile, &mut rng) else {
                    return false;
                };
                let (_, indirect, ..) = profile.raw_mut();
                let vp = indirect.get_mut(&site).expect("picked site exists");
                let Some(e) = vp.first_mut() else {
                    return false;
                };
                e.count = u64::MAX;
                true
            }
            ProfileChaos::Erase => {
                let (direct, indirect, entries, returns) = profile.raw_mut();
                direct.clear();
                indirect.clear();
                entries.clear();
                returns.clear();
                true
            }
        }
    }
}

impl fmt::Display for ProfileChaos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ProfileChaos::DanglingDirectSite => "dangling-direct-site",
            ProfileChaos::DanglingIndirectSite => "dangling-indirect-site",
            ProfileChaos::DanglingTarget => "dangling-target",
            ProfileChaos::DuplicateTarget => "duplicate-target",
            ProfileChaos::TruncateValueProfile => "truncate-value-profile",
            ProfileChaos::SaturateCounts => "saturate-counts",
            ProfileChaos::Erase => "erase",
        };
        f.write_str(name)
    }
}

/// Corrupts a copy of `profile` with the corruption kind derived from
/// `seed`. Returns the corrupted copy, the kind, and whether the corruption
/// actually landed (see [`ProfileChaos::apply`]).
pub fn corrupt_profile(
    profile: &Profile,
    module: &Module,
    seed: u64,
) -> (Profile, ProfileChaos, bool) {
    let kind = ProfileChaos::from_seed(seed);
    let mut p = profile.clone();
    let landed = kind.apply(&mut p, module, seed);
    (p, kind, landed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pibe_ir::{FunctionBuilder, OpKind};

    fn module_and_profile() -> (Module, Profile) {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("leaf", 0);
        b.op(OpKind::Alu);
        b.ret();
        let leaf = m.add_function(b.build());
        let d = m.fresh_site();
        let i = m.fresh_site();
        let mut b = FunctionBuilder::new("root", 0);
        b.call(d, leaf, 0);
        b.call_indirect(i, 1);
        b.ret();
        m.add_function(b.build());
        let mut p = Profile::new();
        p.record_direct(d);
        p.record_indirect(i, leaf);
        p.record_entry(leaf);
        (m, p)
    }

    #[test]
    fn chaos_is_deterministic() {
        let (m, p) = module_and_profile();
        for seed in 0..50 {
            let (a, ka, la) = corrupt_profile(&p, &m, seed);
            let (b, kb, lb) = corrupt_profile(&p, &m, seed);
            assert_eq!(ka, kb);
            assert_eq!(la, lb);
            assert_eq!(a, b, "seed {seed} must corrupt identically");
        }
    }

    #[test]
    fn every_landed_corruption_is_detected_by_validation() {
        let (m, p) = module_and_profile();
        let mut landed_kinds = std::collections::HashSet::new();
        for seed in 0..300 {
            let (corrupt, kind, landed) = corrupt_profile(&p, &m, seed);
            if !landed {
                continue;
            }
            landed_kinds.insert(kind);
            let h = corrupt.validate_against(&m);
            assert!(
                !h.is_clean(),
                "seed {seed} ({kind}) corrupted the profile but validation missed it"
            );
        }
        assert_eq!(
            landed_kinds.len(),
            ProfileChaos::ALL.len(),
            "300 seeds must exercise every corruption kind on this profile"
        );
    }

    #[test]
    fn repair_neutralizes_every_corruption() {
        let (m, p) = module_and_profile();
        for seed in 0..300 {
            let (mut corrupt, kind, landed) = corrupt_profile(&p, &m, seed);
            if !landed {
                continue;
            }
            corrupt.repair_against(&m);
            let h = corrupt.validate_against(&m);
            let acceptable = h.is_clean() || h.issues() == [crate::ProfileIssue::Empty];
            assert!(
                acceptable,
                "seed {seed} ({kind}) left issues after repair: {h}"
            );
        }
    }
}
