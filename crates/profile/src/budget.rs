//! Optimization budgets: "a percentage of the cumulative execution count"
//! (§5.2 Rule 1).

use serde::{Deserialize, Serialize};
use std::fmt;

/// An optimization budget, expressed as a percentage of the cumulative
/// execution count of the candidate population (e.g. `99.0`, `99.9`,
/// `99.9999` — the paper's sweep points).
///
/// A budget of 99% "will attempt to \[optimize\] all of the hottest code that
/// together represents 99% of the execution counts found while profiling."
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Budget(f64);

/// Error constructing a [`Budget`] from an out-of-range percentage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BudgetError(f64);

impl fmt::Display for BudgetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "budget percentage {} not in (0, 100]", self.0)
    }
}

impl std::error::Error for BudgetError {}

impl Budget {
    /// Creates a budget from a percentage in `(0, 100]`.
    ///
    /// # Errors
    /// Returns [`BudgetError`] when `percent` is NaN or outside `(0, 100]`.
    pub fn new(percent: f64) -> Result<Self, BudgetError> {
        if percent.is_nan() || percent <= 0.0 || percent > 100.0 {
            Err(BudgetError(percent))
        } else {
            Ok(Budget(percent))
        }
    }

    /// The paper's 99% budget.
    pub const P99: Budget = Budget(99.0);
    /// The paper's 99.9% budget.
    pub const P99_9: Budget = Budget(99.9);
    /// The paper's 99.999% budget (Table 3's aggressive ICP point).
    pub const P99_999: Budget = Budget(99.999);
    /// The paper's 99.9999% budget (the near-total elision point).
    pub const P99_9999: Budget = Budget(99.9999);

    /// The percentage value.
    pub fn percent(self) -> f64 {
        self.0
    }

    /// The fraction in `(0, 1]`.
    pub fn fraction(self) -> f64 {
        self.0 / 100.0
    }
}

// `Budget` admits total equality and hashing even though it wraps an `f64`:
// construction rejects NaN, and the valid range `(0, 100]` excludes `-0.0`,
// so bitwise identity coincides with `==` for every representable budget.
impl Eq for Budget {}

impl std::hash::Hash for Budget {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.to_bits().hash(state);
    }
}

impl fmt::Display for Budget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}%", self.0)
    }
}

/// A candidate population ranked once, queryable under many budgets.
///
/// [`select_by_budget`] sorts on every call; when several budgets are
/// evaluated over the *same* population — the inliner's strict selection
/// floor and its lax-heuristics floor — rank once and query each budget as
/// an O(n) prefix scan over the shared sort.
#[derive(Debug, Clone)]
pub struct BudgetRanking<T> {
    sorted: Vec<(T, u64)>,
    total: u128,
}

impl<T: Ord + Clone> BudgetRanking<T> {
    /// Ranks `candidates` by descending weight, ties broken by the `Ord`
    /// on `T` — the exact order [`select_by_budget`] uses.
    pub fn new(candidates: &[(T, u64)]) -> Self {
        let total = candidates.iter().map(|(_, w)| u128::from(*w)).sum();
        let mut sorted: Vec<(T, u64)> = candidates.to_vec();
        sorted.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        BudgetRanking { sorted, total }
    }

    /// Length of the minimal hottest-first prefix covering `budget`.
    fn prefix_len(&self, budget: Budget) -> usize {
        if self.total == 0 {
            return 0;
        }
        // Work in exact integer space: the budget percentage is quantised
        // to micro-percent (the paper's finest budget, 99.9999%, has
        // exactly six decimal places), and the comparison
        //   cumulative / total >= percent / 100
        // becomes  cumulative * 10^8 >= total * micro_percent  in u128.
        let micro_percent = (budget.percent() * 1e6).round() as u128;
        let needed = self.total * micro_percent;
        let mut cum: u128 = 0;
        let mut len = 0;
        for (_, w) in &self.sorted {
            if *w == 0 || cum * 100_000_000 >= needed {
                break;
            }
            cum += u128::from(*w);
            len += 1;
        }
        len
    }

    /// The selected hottest-first prefix for `budget` — the slice
    /// [`select_by_budget`] would return for the same population.
    pub fn selected(&self, budget: Budget) -> &[(T, u64)] {
        &self.sorted[..self.prefix_len(budget)]
    }

    /// The weight of the coldest candidate `budget` selects, or `None`
    /// when it selects nothing (empty or zero-weight population).
    pub fn floor(&self, budget: Budget) -> Option<u64> {
        self.selected(budget).last().map(|(_, w)| *w)
    }
}

/// Greedily selects the hottest-first prefix of `candidates` whose cumulative
/// weight covers `budget` percent of the total weight.
///
/// `candidates` may arrive in any order; the returned vector is sorted by
/// descending weight (ties broken by the `Ord` on `T` for determinism) and
/// contains the minimal prefix whose cumulative weight is `>=`
/// `budget.fraction() * total_weight`. Zero-weight candidates are never
/// selected. Evaluating several budgets over one population? Build a
/// [`BudgetRanking`] instead and share the sort.
pub fn select_by_budget<T: Ord + Clone>(candidates: &[(T, u64)], budget: Budget) -> Vec<(T, u64)> {
    BudgetRanking::new(candidates).selected(budget).to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_rejects_out_of_range() {
        assert!(Budget::new(0.0).is_err());
        assert!(Budget::new(-1.0).is_err());
        assert!(Budget::new(100.5).is_err());
        assert!(Budget::new(f64::NAN).is_err());
        assert!(Budget::new(100.0).is_ok());
        assert_eq!(Budget::P99.percent(), 99.0);
        assert_eq!(Budget::new(50.0).unwrap().fraction(), 0.5);
    }

    #[test]
    fn budget_error_displays_value() {
        let e = Budget::new(0.0).unwrap_err();
        assert!(e.to_string().contains('0'));
    }

    #[test]
    fn selects_hottest_prefix_covering_budget() {
        // Weights: 900, 90, 9, 1 (total 1000).
        let cands = vec![("d", 1u64), ("a", 900), ("c", 9), ("b", 90)];
        let sel = select_by_budget(&cands, Budget::new(90.0).unwrap());
        assert_eq!(sel, vec![("a", 900)]);
        let sel = select_by_budget(&cands, Budget::P99);
        assert_eq!(sel, vec![("a", 900), ("b", 90)]);
        let sel = select_by_budget(&cands, Budget::new(99.9).unwrap());
        assert_eq!(sel, vec![("a", 900), ("b", 90), ("c", 9)]);
        let sel = select_by_budget(&cands, Budget::new(100.0).unwrap());
        assert_eq!(sel.len(), 4);
    }

    #[test]
    fn zero_weights_are_never_selected() {
        let cands = vec![("a", 10u64), ("b", 0)];
        let sel = select_by_budget(&cands, Budget::new(100.0).unwrap());
        assert_eq!(sel, vec![("a", 10)]);
        assert!(select_by_budget::<&str>(&[], Budget::P99).is_empty());
        assert!(select_by_budget(&[("a", 0u64)], Budget::P99).is_empty());
    }

    #[test]
    fn ties_break_deterministically() {
        let cands = vec![("b", 5u64), ("a", 5)];
        let sel = select_by_budget(&cands, Budget::new(50.0).unwrap());
        assert_eq!(sel, vec![("a", 5)]);
    }

    #[test]
    fn ranking_answers_every_budget_like_a_fresh_sort() {
        let cands = vec![("d", 1u64), ("a", 900), ("c", 9), ("b", 90), ("e", 0)];
        let ranking = BudgetRanking::new(&cands);
        for budget in [
            Budget::new(50.0).unwrap(),
            Budget::P99,
            Budget::P99_9,
            Budget::new(100.0).unwrap(),
        ] {
            assert_eq!(
                ranking.selected(budget),
                select_by_budget(&cands, budget).as_slice(),
                "budget {budget}"
            );
            assert_eq!(
                ranking.floor(budget),
                select_by_budget(&cands, budget).last().map(|(_, w)| *w)
            );
        }
        assert_eq!(BudgetRanking::<&str>::new(&[]).floor(Budget::P99), None);
    }
}
