//! The profile data structure.

use pibe_ir::{FuncId, SiteId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One `(target, count)` tuple of an indirect call site's value profile —
/// §7: "For indirect sites, which may target multiple functions, we attach
/// value profile metadata represented by a list of (target name, execution
/// count) tuples."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ValueProfileEntry {
    /// The observed target function.
    pub target: FuncId,
    /// How many times this site called this target.
    pub count: u64,
}

/// Execution statistics for a whole program, keyed by stable [`SiteId`]s so
/// the profile survives code transformation (the paper's IR lifting, §7).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Profile {
    direct: HashMap<SiteId, u64>,
    indirect: HashMap<SiteId, Vec<ValueProfileEntry>>,
    entries: HashMap<FuncId, u64>,
    returns: HashMap<FuncId, u64>,
}

/// Mutable views of a profile's four count maps (direct, indirect,
/// entries, returns), handed out by [`Profile::raw_mut`].
pub(crate) type RawCounts<'a> = (
    &'a mut HashMap<SiteId, u64>,
    &'a mut HashMap<SiteId, Vec<ValueProfileEntry>>,
    &'a mut HashMap<FuncId, u64>,
    &'a mut HashMap<FuncId, u64>,
);

impl Profile {
    /// Creates an empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one execution of the direct call at `site`.
    ///
    /// Counts saturate at `u64::MAX` instead of overflowing; a saturated
    /// count is flagged by [`Profile::validate_against`].
    pub fn record_direct(&mut self, site: SiteId) {
        let c = self.direct.entry(site).or_insert(0);
        *c = c.saturating_add(1);
    }

    /// Records one execution of the indirect call at `site` resolving to
    /// `target`.
    ///
    /// Entries are kept sorted by target so the in-memory representation is
    /// canonical — a profile equals its serialization round trip.
    pub fn record_indirect(&mut self, site: SiteId, target: FuncId) {
        let entries = self.indirect.entry(site).or_default();
        match entries.binary_search_by_key(&target, |e| e.target) {
            Ok(i) => entries[i].count = entries[i].count.saturating_add(1),
            Err(i) => entries.insert(i, ValueProfileEntry { target, count: 1 }),
        }
    }

    /// Records one invocation of `func`.
    pub fn record_entry(&mut self, func: FuncId) {
        let c = self.entries.entry(func).or_insert(0);
        *c = c.saturating_add(1);
    }

    /// Records one executed return from `func`.
    pub fn record_return(&mut self, func: FuncId) {
        let c = self.returns.entry(func).or_insert(0);
        *c = c.saturating_add(1);
    }

    /// Execution count of a direct call site (0 when never seen).
    pub fn direct_count(&self, site: SiteId) -> u64 {
        self.direct.get(&site).copied().unwrap_or(0)
    }

    /// Value profile of an indirect call site, sorted hottest-first.
    pub fn value_profile(&self, site: SiteId) -> Vec<ValueProfileEntry> {
        let mut v = self.indirect.get(&site).cloned().unwrap_or_default();
        v.sort_by(|a, b| b.count.cmp(&a.count).then(a.target.cmp(&b.target)));
        v
    }

    /// Total execution count of an indirect call site across all targets
    /// (saturating).
    pub fn indirect_count(&self, site: SiteId) -> u64 {
        self.indirect
            .get(&site)
            .map(|v| v.iter().fold(0u64, |a, e| a.saturating_add(e.count)))
            .unwrap_or(0)
    }

    /// Invocation count of a function (0 when never seen).
    pub fn entry_count(&self, func: FuncId) -> u64 {
        self.entries.get(&func).copied().unwrap_or(0)
    }

    /// Executed-return count of a function (0 when never seen).
    pub fn return_count(&self, func: FuncId) -> u64 {
        self.returns.get(&func).copied().unwrap_or(0)
    }

    /// Iterates over `(site, count)` for all profiled direct call sites.
    pub fn iter_direct(&self) -> impl Iterator<Item = (SiteId, u64)> + '_ {
        self.direct.iter().map(|(s, c)| (*s, *c))
    }

    /// Iterates over `(site, value_profile)` for all profiled indirect call
    /// sites.
    pub fn iter_indirect(&self) -> impl Iterator<Item = (SiteId, &[ValueProfileEntry])> + '_ {
        self.indirect.iter().map(|(s, v)| (*s, v.as_slice()))
    }

    /// Iterates over `(func, invocation_count)` for all profiled functions.
    pub fn iter_entries(&self) -> impl Iterator<Item = (FuncId, u64)> + '_ {
        self.entries.iter().map(|(f, c)| (*f, *c))
    }

    /// Iterates over `(func, executed_return_count)` for all profiled
    /// functions.
    pub fn iter_returns(&self) -> impl Iterator<Item = (FuncId, u64)> + '_ {
        self.returns.iter().map(|(f, c)| (*f, *c))
    }

    /// True when the profile recorded nothing at all.
    pub fn is_empty(&self) -> bool {
        self.direct.is_empty()
            && self.indirect.is_empty()
            && self.entries.is_empty()
            && self.returns.is_empty()
    }

    /// Merges `other` into `self` by summing counts — how the paper
    /// aggregates "all edge execution counts observed across all 11
    /// iterations" (§8).
    ///
    /// Sums saturate at `u64::MAX` rather than overflowing; a saturated
    /// count is reported by [`Profile::validate_against`] and clamped by
    /// [`Profile::repair_against`]. Long-lived accumulators that need to
    /// know *which* counters saturated should call
    /// [`Profile::merge_checked`] instead.
    pub fn merge(&mut self, other: &Profile) {
        let _ = self.merge_checked(other);
    }

    /// Merges `other` into `self` like [`Profile::merge`], additionally
    /// reporting every counter whose sum saturated at `u64::MAX`.
    ///
    /// The merge itself is identical to `merge` — saturated counts are
    /// still written (callers that must not accept a lossy merge should
    /// merge into a clone and discard it when the report is dirty). The
    /// returned [`MergeReport`] lists each overflow as a typed
    /// [`MergeOverflow`] in deterministic (sorted) order, so a continuous
    /// profiling service can surface exactly which sites or functions
    /// exhausted their counters after weeks of epoch accumulation.
    pub fn merge_checked(&mut self, other: &Profile) -> MergeReport {
        let mut overflows = Vec::new();
        for (s, c) in &other.direct {
            let mine = self.direct.entry(*s).or_insert(0);
            let (sum, wrapped) = mine.overflowing_add(*c);
            *mine = if wrapped { u64::MAX } else { sum };
            if wrapped {
                overflows.push(MergeOverflow::Direct { site: *s });
            }
        }
        for (s, entries) in &other.indirect {
            let mine = self.indirect.entry(*s).or_default();
            for e in entries {
                match mine.binary_search_by_key(&e.target, |m| m.target) {
                    Ok(i) => {
                        let (sum, wrapped) = mine[i].count.overflowing_add(e.count);
                        mine[i].count = if wrapped { u64::MAX } else { sum };
                        if wrapped {
                            overflows.push(MergeOverflow::Indirect {
                                site: *s,
                                target: e.target,
                            });
                        }
                    }
                    Err(i) => mine.insert(i, *e),
                }
            }
        }
        for (f, c) in &other.entries {
            let mine = self.entries.entry(*f).or_insert(0);
            let (sum, wrapped) = mine.overflowing_add(*c);
            *mine = if wrapped { u64::MAX } else { sum };
            if wrapped {
                overflows.push(MergeOverflow::Entry { func: *f });
            }
        }
        for (f, c) in &other.returns {
            let mine = self.returns.entry(*f).or_insert(0);
            let (sum, wrapped) = mine.overflowing_add(*c);
            *mine = if wrapped { u64::MAX } else { sum };
            if wrapped {
                overflows.push(MergeOverflow::Return { func: *f });
            }
        }
        // Hash-map iteration order is arbitrary; sort so the report is
        // deterministic for journals and tests.
        overflows.sort();
        MergeReport { overflows }
    }

    /// Raw mutable access to the count maps, for the sibling `health` and
    /// `chaos` modules (repair rewrites entries in place; fault injection
    /// plants corruptions the public API refuses to create).
    pub(crate) fn raw_mut(&mut self) -> RawCounts<'_> {
        (
            &mut self.direct,
            &mut self.indirect,
            &mut self.entries,
            &mut self.returns,
        )
    }

    /// Summary statistics. Weights saturate at `u64::MAX` rather than
    /// overflowing on pathological (e.g. fault-injected) profiles.
    pub fn stats(&self) -> ProfileStats {
        let sat = |it: &mut dyn Iterator<Item = u64>| it.fold(0u64, u64::saturating_add);
        ProfileStats {
            direct_sites: self.direct.len() as u64,
            indirect_sites: self.indirect.len() as u64,
            indirect_targets: self.indirect.values().map(|v| v.len() as u64).sum(),
            direct_weight: sat(&mut self.direct.values().copied()),
            indirect_weight: sat(&mut self
                .indirect
                .values()
                .flat_map(|v| v.iter().map(|e| e.count))),
            return_weight: sat(&mut self.returns.values().copied()),
        }
    }

    /// Distribution of indirect call sites by number of distinct observed
    /// targets: index 0 holds the count of 1-target sites, … index 5 of
    /// 6-target sites, index 6 of >6-target sites (the paper's Table 4).
    pub fn target_multiplicity_histogram(&self) -> [u64; 7] {
        let mut hist = [0u64; 7];
        for entries in self.indirect.values() {
            let n = entries.len();
            if n == 0 {
                continue;
            }
            let bucket = if n > 6 { 6 } else { n - 1 };
            hist[bucket] += 1;
        }
        hist
    }

    /// Serializes to pretty JSON (the artifact stores profiles as files the
    /// optimization run reads back).
    pub fn to_json(&self) -> String {
        // Hash maps with non-string keys need a stable, portable encoding:
        // emit sorted association lists.
        serde_json::to_string_pretty(&PortableProfile::from(self))
            .expect("profile serialization cannot fail")
    }

    /// Parses a profile previously produced by [`Profile::to_json`].
    ///
    /// # Errors
    /// Returns the underlying `serde_json` error when the input is not a
    /// valid profile document, or a semantic error when the document's
    /// association lists contain duplicate keys (a map-backed profile
    /// would silently keep only one of the conflicting counts).
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str::<PortableProfile>(s)?.try_into()
    }
}

/// Stable on-disk representation (sorted association lists).
#[derive(Serialize, Deserialize)]
struct PortableProfile {
    direct: Vec<(SiteId, u64)>,
    indirect: Vec<(SiteId, Vec<ValueProfileEntry>)>,
    entries: Vec<(FuncId, u64)>,
    returns: Vec<(FuncId, u64)>,
}

impl From<&Profile> for PortableProfile {
    fn from(p: &Profile) -> Self {
        let mut direct: Vec<_> = p.direct.iter().map(|(s, c)| (*s, *c)).collect();
        direct.sort_by_key(|(s, _)| *s);
        let mut indirect: Vec<_> = p
            .indirect
            .iter()
            .map(|(s, v)| {
                let mut v = v.clone();
                v.sort_by_key(|e| e.target);
                (*s, v)
            })
            .collect();
        indirect.sort_by_key(|(s, _)| *s);
        let mut entries: Vec<_> = p.entries.iter().map(|(f, c)| (*f, *c)).collect();
        entries.sort_by_key(|(f, _)| *f);
        let mut returns: Vec<_> = p.returns.iter().map(|(f, c)| (*f, *c)).collect();
        returns.sort_by_key(|(f, _)| *f);
        PortableProfile {
            direct,
            indirect,
            entries,
            returns,
        }
    }
}

/// Collects an association list into a map, rejecting duplicate keys:
/// plain `collect()` would keep the last occurrence and silently drop the
/// other count, corrupting the profile on ambiguous input.
fn collect_unique<K, V>(pairs: Vec<(K, V)>, what: &str) -> Result<HashMap<K, V>, serde_json::Error>
where
    K: std::hash::Hash + Eq + Copy + std::fmt::Debug,
{
    let mut map = HashMap::with_capacity(pairs.len());
    for (k, v) in pairs {
        if map.insert(k, v).is_some() {
            return Err(serde_json::Error::custom(format!(
                "duplicate {what} key {k:?} in profile document"
            )));
        }
    }
    Ok(map)
}

impl TryFrom<PortableProfile> for Profile {
    type Error = serde_json::Error;

    fn try_from(p: PortableProfile) -> Result<Self, serde_json::Error> {
        Ok(Profile {
            direct: collect_unique(p.direct, "direct-site")?,
            indirect: collect_unique(p.indirect, "indirect-site")?,
            entries: collect_unique(p.entries, "entry")?,
            returns: collect_unique(p.returns, "return")?,
        })
    }
}

/// One counter that saturated at `u64::MAX` during a
/// [`Profile::merge_checked`], identified by the key the profile stores it
/// under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum MergeOverflow {
    /// A direct call site's execution count saturated.
    Direct {
        /// The saturated call site.
        site: SiteId,
    },
    /// One `(site, target)` tuple of an indirect site's value profile
    /// saturated.
    Indirect {
        /// The indirect call site.
        site: SiteId,
        /// The target whose tuple saturated.
        target: FuncId,
    },
    /// A function's invocation count saturated.
    Entry {
        /// The saturated function.
        func: FuncId,
    },
    /// A function's executed-return count saturated.
    Return {
        /// The saturated function.
        func: FuncId,
    },
}

impl std::fmt::Display for MergeOverflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MergeOverflow::Direct { site } => {
                write!(f, "direct count at {site:?} saturated at u64::MAX")
            }
            MergeOverflow::Indirect { site, target } => {
                write!(
                    f,
                    "value profile ({site:?}, {target:?}) saturated at u64::MAX"
                )
            }
            MergeOverflow::Entry { func } => {
                write!(f, "entry count of {func:?} saturated at u64::MAX")
            }
            MergeOverflow::Return { func } => {
                write!(f, "return count of {func:?} saturated at u64::MAX")
            }
        }
    }
}

/// Result of a [`Profile::merge_checked`]: every counter that saturated,
/// in deterministic sorted order (empty for a lossless merge).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MergeReport {
    /// The saturated counters, sorted.
    pub overflows: Vec<MergeOverflow>,
}

impl MergeReport {
    /// True when no counter saturated — the merge was an exact sum.
    pub fn is_clean(&self) -> bool {
        self.overflows.is_empty()
    }
}

/// Aggregate statistics over a [`Profile`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProfileStats {
    /// Number of distinct direct call sites observed.
    pub direct_sites: u64,
    /// Number of distinct indirect call sites observed.
    pub indirect_sites: u64,
    /// Total distinct `(site, target)` pairs observed.
    pub indirect_targets: u64,
    /// Sum of direct call counts.
    pub direct_weight: u64,
    /// Sum of indirect call counts.
    pub indirect_weight: u64,
    /// Sum of executed returns.
    pub return_weight: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site(n: u64) -> SiteId {
        SiteId::from_raw(n)
    }
    fn func(n: u32) -> FuncId {
        FuncId::from_raw(n)
    }

    #[test]
    fn direct_counts_accumulate() {
        let mut p = Profile::new();
        p.record_direct(site(1));
        p.record_direct(site(1));
        p.record_direct(site(2));
        assert_eq!(p.direct_count(site(1)), 2);
        assert_eq!(p.direct_count(site(2)), 1);
        assert_eq!(p.direct_count(site(3)), 0);
    }

    #[test]
    fn value_profile_sorts_hottest_first() {
        let mut p = Profile::new();
        for _ in 0..3 {
            p.record_indirect(site(1), func(10));
        }
        p.record_indirect(site(1), func(20));
        let vp = p.value_profile(site(1));
        assert_eq!(vp.len(), 2);
        assert_eq!(vp[0].target, func(10));
        assert_eq!(vp[0].count, 3);
        assert_eq!(p.indirect_count(site(1)), 4);
    }

    #[test]
    fn merge_sums_counts_across_runs() {
        let mut a = Profile::new();
        a.record_direct(site(1));
        a.record_indirect(site(2), func(1));
        a.record_entry(func(1));
        a.record_return(func(1));
        let mut b = Profile::new();
        b.record_direct(site(1));
        b.record_indirect(site(2), func(1));
        b.record_indirect(site(2), func(2));
        a.merge(&b);
        assert_eq!(a.direct_count(site(1)), 2);
        assert_eq!(a.indirect_count(site(2)), 3);
        assert_eq!(a.value_profile(site(2)).len(), 2);
        assert_eq!(a.entry_count(func(1)), 1);
        assert_eq!(a.return_count(func(1)), 1);
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        let mut p = Profile::new();
        p.record_direct(site(9));
        p.record_indirect(site(3), func(4));
        p.record_entry(func(4));
        p.record_return(func(4));
        let json = p.to_json();
        let back = Profile::from_json(&json).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(Profile::from_json("not json").is_err());
    }

    #[test]
    fn multiplicity_histogram_buckets_correctly() {
        let mut p = Profile::new();
        // site 1: 1 target, site 2: 2 targets, site 3: 8 targets.
        p.record_indirect(site(1), func(0));
        p.record_indirect(site(2), func(0));
        p.record_indirect(site(2), func(1));
        for t in 0..8 {
            p.record_indirect(site(3), func(t));
        }
        let h = p.target_multiplicity_histogram();
        assert_eq!(h[0], 1);
        assert_eq!(h[1], 1);
        assert_eq!(h[6], 1);
        assert_eq!(h[2] + h[3] + h[4] + h[5], 0);
    }

    #[test]
    fn stats_aggregate_all_dimensions() {
        let mut p = Profile::new();
        p.record_direct(site(1));
        p.record_direct(site(1));
        p.record_indirect(site(2), func(1));
        p.record_return(func(1));
        let s = p.stats();
        assert_eq!(s.direct_sites, 1);
        assert_eq!(s.direct_weight, 2);
        assert_eq!(s.indirect_sites, 1);
        assert_eq!(s.indirect_targets, 1);
        assert_eq!(s.indirect_weight, 1);
        assert_eq!(s.return_weight, 1);
    }
}
