//! Printed-IR byte identity against the committed difftest corpus.
//!
//! Every `.pibecase` fixture embeds its module as the exact output of the
//! IR printer at the time the fixture was committed. Parsing that text and
//! re-printing it must reproduce the committed bytes: the printer is the
//! golden format that fixtures, golden tests, and the 1/2/4/7-thread
//! bit-identity suite all compare through, so any formatting drift (or a
//! parse that loses information) shows up here first, pinned to real
//! minimized cases rather than synthetic ones.

use pibe_ir::parse_module;
use std::fs;
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus")
}

/// The `module:` section of a fixture, byte-exact (everything after the
/// header line; see `pibe_difftest::fixture::to_text`).
fn module_section(text: &str, path: &std::path::Path) -> String {
    let marker = "module:\n";
    let at = text
        .find(marker)
        .unwrap_or_else(|| panic!("{} has no module section", path.display()));
    text[at + marker.len()..].to_string()
}

#[test]
fn corpus_modules_reprint_byte_identical() {
    let dir = corpus_dir();
    let mut entries: Vec<_> = fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("missing corpus dir {}: {e}", dir.display()))
        .map(|e| e.expect("readable corpus dir").path())
        .filter(|p| p.extension().is_some_and(|x| x == "pibecase"))
        .collect();
    entries.sort();
    assert!(
        entries.len() >= 3,
        "corpus unexpectedly small: {} fixtures",
        entries.len()
    );
    for path in entries {
        let text = fs::read_to_string(&path).expect("readable fixture");
        let committed = module_section(&text, &path);
        let module = parse_module(&committed)
            .unwrap_or_else(|e| panic!("{} does not parse: {e}", path.display()));
        let reprinted = module.to_string();
        assert_eq!(
            reprinted,
            committed,
            "{} re-prints differently from its committed bytes",
            path.display()
        );
    }
}

/// Printing is a pure function of the IR: a second render, and a render of
/// a parse-of-a-render, both reproduce the same bytes. This is the
/// fixed-point property the byte-identity comparisons in the threaded
/// build tests rely on.
#[test]
fn reprint_is_a_fixed_point() {
    let dir = corpus_dir();
    for entry in fs::read_dir(&dir).expect("corpus dir") {
        let path = entry.expect("readable corpus dir").path();
        if path.extension().is_none_or(|x| x != "pibecase") {
            continue;
        }
        let text = fs::read_to_string(&path).expect("readable fixture");
        let committed = module_section(&text, &path);
        let once = parse_module(&committed).expect("parses").to_string();
        let twice = parse_module(&once).expect("re-parses").to_string();
        assert_eq!(once, twice, "{} is not a print fixed point", path.display());
    }
}
