//! Modules: the unit of whole-program optimization.
//!
//! A [`Module`] owns its functions behind `Arc`s (copy-on-write) and keys
//! them by dense [`FuncId`]s; names are interned [`Symbol`]s, so
//! [`Module::find_function`] is an interner lookup plus a `u32` scan, never
//! a string comparison per function.
//!
//! ```
//! use pibe_ir::{FunctionBuilder, Module, OpKind, BlockId};
//!
//! let mut m = Module::new("doc");
//! let mut b = FunctionBuilder::new("leaf", 0);
//! b.ops(OpKind::Alu, 2);
//! b.ret();
//! let id = m.add_function(b.build());
//!
//! // Blocks are (start, len) ranges over one flat instruction pool.
//! let f = m.function(id);
//! assert_eq!(f.num_blocks(), 1);
//! assert_eq!(f.block(BlockId::ENTRY).insts().len(), 2);
//! assert_eq!(f.iter_insts().count(), 2);
//! assert_eq!(m.find_function("leaf"), Some(id));
//! ```

use crate::func::Function;
use crate::ids::{FuncId, SiteId, Symbol};
use crate::inst::{Inst, Terminator};
use crate::verify::{self, VerifyError};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A whole program: the analogue of the paper's LTO-linked kernel bitcode.
///
/// All of PIBE's passes are interprocedural and operate on a `Module`.
///
/// Functions are stored behind [`Arc`]s, making the module **copy-on-write**:
/// `Module::clone` is O(#functions) pointer bumps with full structural
/// sharing, and only [`Module::function_mut`] (via [`Arc::make_mut`])
/// materialises a private copy of the one function actually written. This is
/// what makes the pipeline's transactional stage snapshots, rollback, and the
/// farm's per-build base clones proportional to *hot work* instead of module
/// size. Passes must therefore check read-only whether a function needs
/// changing before calling `function_mut` — an unconditional write walk
/// would degrade CoW back into a deep copy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Module {
    name: String,
    functions: Vec<Arc<Function>>,
    next_site: u64,
}

impl Module {
    /// Creates an empty module.
    pub fn new(name: impl Into<String>) -> Self {
        Module {
            name: name.into(),
            functions: Vec::new(),
            next_site: 0,
        }
    }

    /// The module's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a function, assigning and returning its id.
    pub fn add_function(&mut self, mut f: Function) -> FuncId {
        let id = FuncId::from_raw(self.functions.len() as u32);
        f.id = id;
        self.functions.push(Arc::new(f));
        id
    }

    /// Adds an already-shared function, assigning and returning its id.
    ///
    /// When `f.id()` already equals the assigned id the `Arc` is pushed
    /// as-is (no copy — the DCE sweep keeps every untouched survivor
    /// shared with the input module this way); otherwise the function is
    /// copied once to fix its id.
    pub fn add_function_arc(&mut self, mut f: Arc<Function>) -> FuncId {
        let id = FuncId::from_raw(self.functions.len() as u32);
        if f.id != id {
            Arc::make_mut(&mut f).id = id;
        }
        self.functions.push(f);
        id
    }

    /// Replaces the function at `id` with `f`, fixing `f`'s id to match.
    /// Used to rebuild forward-referenced functions (generators create
    /// placeholder bodies first, then fill them in).
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn replace_function(&mut self, id: FuncId, mut f: Function) {
        f.id = id;
        self.functions[id.index()] = Arc::new(f);
    }

    /// The raw value the next [`Module::fresh_site`] call would return
    /// (used by the text parser to keep parsed site ids collision-free).
    pub fn peek_next_site(&self) -> u64 {
        self.next_site
    }

    /// Allocates a fresh, never-used call-site id.
    pub fn fresh_site(&mut self) -> SiteId {
        let id = SiteId::from_raw(self.next_site);
        self.next_site += 1;
        id
    }

    /// Returns the function with the given id.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn function(&self, id: FuncId) -> &Function {
        &self.functions[id.index()]
    }

    /// Mutable access to a function.
    ///
    /// Copy-on-write: when the function is shared with a snapshot (a cloned
    /// module), the first mutable access copies it; later accesses are free.
    /// Check read-only state first and call this only for functions that
    /// actually change.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn function_mut(&mut self, id: FuncId) -> &mut Function {
        Arc::make_mut(&mut self.functions[id.index()])
    }

    /// All functions in id order, behind their sharing handles.
    ///
    /// Iterating yields `&Arc<Function>`, which auto-derefs to
    /// [`Function`] for method calls; use [`Arc::ptr_eq`] on two modules'
    /// entries to observe structural sharing.
    pub fn functions(&self) -> &[Arc<Function>] {
        &self.functions
    }

    /// The sharing handle of one function (cheap to clone; parallel stages
    /// hand these to worker threads).
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn function_arc(&self, id: FuncId) -> &Arc<Function> {
        &self.functions[id.index()]
    }

    /// Installs a (typically worker-produced) function at `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of range or `f`'s id does not match `id` —
    /// deterministic parallel merges are keyed by function id.
    pub fn set_function_arc(&mut self, id: FuncId, f: Arc<Function>) {
        assert_eq!(f.id, id, "merged function must keep its id");
        self.functions[id.index()] = f;
    }

    /// Iterates over function ids.
    pub fn func_ids(&self) -> impl Iterator<Item = FuncId> {
        (0..self.functions.len() as u32).map(FuncId::from_raw)
    }

    /// Number of functions.
    pub fn len(&self) -> usize {
        self.functions.len()
    }

    /// True when the module has no functions.
    pub fn is_empty(&self) -> bool {
        self.functions.is_empty()
    }

    /// Looks a function up by name. The name is resolved through the symbol
    /// interner first, so a miss costs one hash lookup and a hit scans
    /// `u32`s, never strings.
    pub fn find_function(&self, name: &str) -> Option<FuncId> {
        let sym = Symbol::lookup(name)?;
        self.functions
            .iter()
            .position(|f| f.name == sym)
            .map(|i| FuncId::from_raw(i as u32))
    }

    /// Checks structural invariants; see [`VerifyError`] for the conditions.
    pub fn verify(&self) -> Result<(), VerifyError> {
        verify::verify(self)
    }

    /// Like [`Module::verify`], fanning the independent per-function checks
    /// across up to `threads` workers. On failure the reported error is the
    /// one the sequential walk would find first (lowest offending function
    /// id), so diagnostics are identical under any thread count.
    pub fn verify_threaded(&self, threads: usize) -> Result<(), VerifyError> {
        verify::verify_with_threads(self, threads)
    }

    /// Counts the static branch population of the module — the denominators
    /// of the paper's Tables 10 and 11.
    pub fn census(&self) -> BranchCensus {
        let mut c = BranchCensus::default();
        for f in &self.functions {
            // Flat pool scan: tombstones are plain `Op`s and cannot match.
            for inst in f.insts() {
                match inst {
                    Inst::Call { .. } => c.direct_calls += 1,
                    Inst::CallIndirect { .. } => c.indirect_calls += 1,
                    _ => {}
                }
            }
            for term in f.terms() {
                match term {
                    Terminator::Return => c.returns += 1,
                    Terminator::Switch { via_table, .. } if *via_table => c.indirect_jumps += 1,
                    _ => {}
                }
            }
        }
        c
    }

    /// Total code size in model bytes (the paper's "img size" numerator).
    pub fn code_bytes(&self) -> u64 {
        self.functions
            .iter()
            .map(|f| crate::size::function_bytes(f))
            .sum()
    }
}

/// Static counts of each branch kind in a module.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BranchCensus {
    /// Number of static direct call sites.
    pub direct_calls: u64,
    /// Number of static indirect call sites.
    pub indirect_calls: u64,
    /// Number of static indirect jumps (jump-table switches).
    pub indirect_jumps: u64,
    /// Number of static return sites.
    pub returns: u64,
}

impl BranchCensus {
    /// Total indirect branches (the attack surface): icalls + ijumps + rets.
    pub fn indirect_total(&self) -> u64 {
        self.indirect_calls + self.indirect_jumps + self.returns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::OpKind;

    fn sample_module() -> Module {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("leaf", 0);
        b.op(OpKind::Alu);
        b.ret();
        let leaf = m.add_function(b.build());

        let s1 = m.fresh_site();
        let s2 = m.fresh_site();
        let mut b = FunctionBuilder::new("root", 0);
        b.call(s1, leaf, 0);
        b.call_indirect(s2, 1);
        b.ret();
        m.add_function(b.build());
        m
    }

    #[test]
    fn add_function_assigns_dense_ids() {
        let m = sample_module();
        assert_eq!(m.len(), 2);
        assert_eq!(m.function(FuncId::from_raw(0)).name(), "leaf");
        assert_eq!(m.function(FuncId::from_raw(1)).name(), "root");
        assert_eq!(m.find_function("root"), Some(FuncId::from_raw(1)));
        assert_eq!(m.find_function("missing"), None);
    }

    #[test]
    fn fresh_sites_never_repeat() {
        let mut m = Module::new("m");
        let a = m.fresh_site();
        let b = m.fresh_site();
        assert_ne!(a, b);
    }

    #[test]
    fn census_counts_each_branch_kind() {
        let m = sample_module();
        let c = m.census();
        assert_eq!(c.direct_calls, 1);
        assert_eq!(c.indirect_calls, 1);
        assert_eq!(c.returns, 2);
        assert_eq!(c.indirect_jumps, 0);
        assert_eq!(c.indirect_total(), 3);
    }

    #[test]
    fn code_bytes_is_positive_for_nonempty_module() {
        let m = sample_module();
        assert!(m.code_bytes() > 0);
    }

    #[test]
    fn module_serde_roundtrip_preserves_everything() {
        let m = sample_module();
        let json = serde_json::to_string(&m).expect("module serializes");
        let back: Module = serde_json::from_str(&json).expect("module parses");
        assert_eq!(back.name(), m.name());
        assert_eq!(back.len(), m.len());
        assert_eq!(back.functions(), m.functions());
        assert_eq!(back.peek_next_site(), m.peek_next_site());
        back.verify().unwrap();
    }

    #[test]
    fn replace_function_fixes_the_id() {
        let mut m = sample_module();
        let root = m.find_function("root").unwrap();
        let mut b = FunctionBuilder::new("root2", 0);
        b.ret();
        m.replace_function(root, b.build());
        assert_eq!(m.function(root).id(), root);
        assert_eq!(m.function(root).name(), "root2");
        m.verify().unwrap();
    }
}
