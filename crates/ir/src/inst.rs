//! Instructions, terminators, and branch classification.

use crate::ids::{BlockId, FuncId, SiteId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Cost class of a non-branch instruction.
///
/// PIBE's algorithms never inspect operand values, only instruction *shape*
/// (is it a branch? how expensive is it? how large is it?), so non-branch
/// instructions collapse to a handful of cost classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Register-to-register arithmetic or logic (1 cycle).
    Alu,
    /// Register move / constant materialisation (1 cycle).
    Mov,
    /// Compare, usually feeding a conditional branch (1 cycle).
    Cmp,
    /// Memory load (L1-hit latency).
    Load,
    /// Memory store (1 cycle, store buffer absorbs latency).
    Store,
    /// Serialising fence such as `lfence` (models hand-written fences in the
    /// source program; hardening-inserted fences are accounted separately by
    /// the defense cost model).
    Fence,
}

impl OpKind {
    /// All op kinds, for exhaustive sweeps in tests and generators.
    pub const ALL: [OpKind; 6] = [
        OpKind::Alu,
        OpKind::Mov,
        OpKind::Cmp,
        OpKind::Load,
        OpKind::Store,
        OpKind::Fence,
    ];
}

/// A non-terminator instruction.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Inst {
    /// A non-branch instruction of the given cost class.
    Op(OpKind),
    /// A direct call to `callee` passing `args` arguments.
    Call {
        /// Stable profile identity of this call site.
        site: SiteId,
        /// The called function.
        callee: FuncId,
        /// Number of arguments (drives LLVM-style call cost `5 + 5·args`).
        args: u8,
    },
    /// An indirect call through a function pointer.
    ///
    /// The runtime target comes from the workload's target oracle for
    /// `site`. When `resolved` is true the target has already been sampled
    /// by a preceding [`Inst::ResolveTarget`] in the same frame (the shape
    /// indirect call promotion produces for its fallback call).
    CallIndirect {
        /// Stable profile identity of this call site.
        site: SiteId,
        /// Number of arguments.
        args: u8,
        /// Whether a `ResolveTarget` already pinned the runtime target.
        resolved: bool,
        /// The call is implemented inside an inline-assembly macro (the
        /// kernel's paravirt hypercalls, §8.6): the compiler cannot convert
        /// it to a retpoline thunk, so it stays *vulnerable* under every
        /// defense, and inlining duplicates it (Table 11's "Vuln. ICalls"
        /// growing from 41 to 170 with the optimization budget).
        asm: bool,
    },
    /// Samples the runtime target of indirect-call `site` and pins it for the
    /// current frame, to be consumed by [`Cond::TargetIs`] guards and the
    /// final `CallIndirect { resolved: true }` fallback.
    ///
    /// This models the target register load (`mov %target, %r11`) that
    /// precedes a promoted indirect call sequence; it costs one move.
    ResolveTarget {
        /// The indirect call site being resolved.
        site: SiteId,
    },
}

impl Inst {
    /// Returns the call site id if this instruction is a call of any kind.
    pub fn call_site(&self) -> Option<SiteId> {
        match self {
            Inst::Call { site, .. } | Inst::CallIndirect { site, .. } => Some(*site),
            _ => None,
        }
    }

    /// Returns true for `Call` and `CallIndirect`.
    pub fn is_call(&self) -> bool {
        matches!(self, Inst::Call { .. } | Inst::CallIndirect { .. })
    }
}

/// Condition driving a two-way branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Cond {
    /// Data-dependent condition modelled as a taken probability in
    /// per-mille (0..=1000). Sampled from the workload's seeded RNG.
    Random {
        /// Probability of taking the `then` edge, in 1/1000 units.
        ptaken_milli: u16,
    },
    /// Guard of a promoted indirect call: taken iff the pinned runtime target
    /// of `site` equals `target`. Costs a compare plus a predictable branch
    /// (~2 cycles), matching the paper's §5.3 estimate.
    TargetIs {
        /// The promoted indirect call site.
        site: SiteId,
        /// The candidate target being tested.
        target: FuncId,
    },
}

/// Block terminator.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Terminator {
    /// Unconditional branch.
    Jump {
        /// Successor block.
        target: BlockId,
    },
    /// Two-way conditional branch.
    Branch {
        /// Condition selecting between the successors.
        cond: Cond,
        /// Successor when the condition holds.
        then_bb: BlockId,
        /// Successor when the condition does not hold.
        else_bb: BlockId,
    },
    /// Multiway branch (a C `switch`).
    ///
    /// When `via_table` is true the compiler lowered it as a bounds-checked
    /// *indirect jump* through a jump table — fast, but a Spectre-V2 surface
    /// under transient execution. When false it is lowered as a compare
    /// chain: immune, but costing ~1 cycle per case tested.
    Switch {
        /// Per-case selection weights (parallel to `cases`); sampled
        /// against `default_weight` by the executor.
        weights: Vec<u16>,
        /// Case successor blocks.
        cases: Vec<BlockId>,
        /// Weight of falling through to `default`.
        default_weight: u16,
        /// Default successor block.
        default: BlockId,
        /// Whether this switch is lowered through an indirect jump table.
        via_table: bool,
    },
    /// Function return (the backward edge PIBE's inliner eliminates).
    Return,
}

impl Terminator {
    /// Iterates over all successor blocks.
    pub fn successors(&self) -> impl Iterator<Item = BlockId> + '_ {
        // Allocation-free: two inline slots cover jumps and branches, the
        // switch case list is borrowed, and the trailing slot carries the
        // switch default (order: cases, then default).
        let (a, b, cases, last): (
            Option<BlockId>,
            Option<BlockId>,
            &[BlockId],
            Option<BlockId>,
        ) = match self {
            Terminator::Jump { target } => (Some(*target), None, &[], None),
            Terminator::Branch {
                then_bb, else_bb, ..
            } => (Some(*then_bb), Some(*else_bb), &[], None),
            Terminator::Switch { cases, default, .. } => {
                (None, None, cases.as_slice(), Some(*default))
            }
            Terminator::Return => (None, None, &[], None),
        };
        a.into_iter()
            .chain(b)
            .chain(cases.iter().copied())
            .chain(last)
    }

    /// Rewrites every successor id through `f` (used when splicing CFGs).
    pub fn map_successors(&mut self, mut f: impl FnMut(BlockId) -> BlockId) {
        match self {
            Terminator::Jump { target } => *target = f(*target),
            Terminator::Branch {
                then_bb, else_bb, ..
            } => {
                *then_bb = f(*then_bb);
                *else_bb = f(*else_bb);
            }
            Terminator::Switch { cases, default, .. } => {
                for c in cases.iter_mut() {
                    *c = f(*c);
                }
                *default = f(*default);
            }
            Terminator::Return => {}
        }
    }

    /// Returns true for `Return`.
    pub fn is_return(&self) -> bool {
        matches!(self, Terminator::Return)
    }
}

/// The three flavours of indirect branch PIBE defends (§5.1), plus direct
/// calls for cost accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BranchKind {
    /// Direct call with a fixed target.
    DirectCall,
    /// Indirect call through a function pointer.
    IndirectCall,
    /// Indirect jump (jump-table lowered switch).
    IndirectJump,
    /// Function return.
    Return,
}

impl fmt::Display for BranchKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BranchKind::DirectCall => "dcall",
            BranchKind::IndirectCall => "icall",
            BranchKind::IndirectJump => "ijump",
            BranchKind::Return => "ret",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn call_site_extraction() {
        let s = SiteId::from_raw(5);
        let call = Inst::Call {
            site: s,
            callee: FuncId::from_raw(1),
            args: 2,
        };
        assert_eq!(call.call_site(), Some(s));
        assert!(call.is_call());
        assert_eq!(Inst::Op(OpKind::Alu).call_site(), None);
        assert!(!Inst::ResolveTarget { site: s }.is_call());
    }

    #[test]
    fn successors_cover_all_edges() {
        let t = Terminator::Switch {
            weights: vec![1, 2],
            cases: vec![BlockId::from_raw(1), BlockId::from_raw(2)],
            default_weight: 1,
            default: BlockId::from_raw(3),
            via_table: true,
        };
        let succ: Vec<_> = t.successors().collect();
        assert_eq!(
            succ,
            vec![
                BlockId::from_raw(1),
                BlockId::from_raw(2),
                BlockId::from_raw(3)
            ]
        );
        assert!(Terminator::Return.successors().next().is_none());
    }

    #[test]
    fn map_successors_rewrites_every_edge() {
        let mut t = Terminator::Branch {
            cond: Cond::Random { ptaken_milli: 500 },
            then_bb: BlockId::from_raw(1),
            else_bb: BlockId::from_raw(2),
        };
        t.map_successors(|b| BlockId::from_raw(b.index() as u32 + 10));
        match t {
            Terminator::Branch {
                then_bb, else_bb, ..
            } => {
                assert_eq!(then_bb, BlockId::from_raw(11));
                assert_eq!(else_bb, BlockId::from_raw(12));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn branch_kind_display() {
        assert_eq!(BranchKind::IndirectCall.to_string(), "icall");
        assert_eq!(BranchKind::Return.to_string(), "ret");
    }
}
