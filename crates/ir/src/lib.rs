//! # pibe-ir
//!
//! The compiler intermediate representation (IR) substrate used throughout the
//! PIBE reproduction.
//!
//! The original PIBE implementation operates on LLVM bitcode for the entire
//! Linux kernel. This crate provides a self-contained stand-in at exactly the
//! abstraction level PIBE's algorithms consume:
//!
//! * a module of [`Function`]s, each a control-flow graph of [`Block`]s,
//! * non-branch instructions carrying a *cost class* ([`OpKind`]) instead of
//!   full operand semantics,
//! * explicit direct calls, indirect calls, switches (optionally lowered via
//!   jump tables), conditional branches, and returns — the branch flavours
//!   whose elision and hardening PIBE is about,
//! * stable [`SiteId`]s for call sites so that profiles collected on one
//!   version of the code can be *lifted* onto transformed code (the paper's
//!   §7 "Kernel Profiling" lifting step), and
//! * a code-size model (`size` module) matching LLVM's `InlineCost`
//!   convention of ~5 abstract units per instruction.
//!
//! Control-flow decisions that would depend on runtime data in a real program
//! are represented as *behaviours*: a conditional branch carries a taken
//! probability, a switch carries case weights, and an indirect call resolves
//! its target through a per-site target oracle owned by the workload (see the
//! `pibe-kernel` crate). This makes whole-program execution deterministic
//! given a seed while still producing workload-dependent hot paths.
//!
//! ## Example
//!
//! ```
//! use pibe_ir::{FunctionBuilder, Module, OpKind};
//!
//! let mut module = Module::new("demo");
//! let callee = {
//!     let mut b = FunctionBuilder::new("callee", 1);
//!     b.op(OpKind::Alu);
//!     b.ret();
//!     module.add_function(b.build())
//! };
//! let mut b = FunctionBuilder::new("caller", 0);
//! let site = module.fresh_site();
//! b.call(site, callee, 1);
//! b.ret();
//! let caller = module.add_function(b.build());
//! module.verify().unwrap();
//! assert_eq!(module.function(caller).name(), "caller");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod builder;
mod callgraph;
mod func;
mod ids;
mod inst;
mod module;
pub mod par;
mod print;
pub mod size;
pub mod text;
mod verify;

pub use builder::FunctionBuilder;
pub use callgraph::{recursive_marks, CallGraph, CallGraphEdge};
pub use func::{Block, BlockRef, FnAttrs, Function};
pub use ids::{BlockId, FuncId, SiteId, Symbol};
pub use inst::{BranchKind, Cond, Inst, OpKind, Terminator};
pub use module::{BranchCensus, Module};
pub use text::{parse_module, ParseError};
pub use verify::VerifyError;
