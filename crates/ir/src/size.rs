//! Code-size and complexity models.
//!
//! Two related but distinct measures:
//!
//! * **bytes** — the model's machine-code footprint, used for the image-size
//!   experiments (Table 12) and the simulator's i-cache layout;
//! * **inline cost** — LLVM's `InlineCost`-style complexity heuristic, which
//!   the paper describes exactly in §5.2: "Most instructions incur a standard
//!   cost [of 5] … a nested call instruction is assigned cost
//!   `5 + 5 * num_args`". PIBE's Rules 2 and 3 threshold on this measure.

use crate::func::Function;
use crate::ids::BlockId;
use crate::inst::{Inst, OpKind, Terminator};

/// LLVM's standard per-instruction cost on x86 (§5.2: "perhaps used as an
/// approximation for the average binary instruction size").
pub const STANDARD_INST_COST: u32 = 5;

/// Inline cost of one instruction.
pub fn inst_cost(inst: &Inst) -> u32 {
    match inst {
        Inst::Op(_) => STANDARD_INST_COST,
        // §5.2: "a nested call instruction is assigned cost 5 + 5 * num_args"
        Inst::Call { args, .. } | Inst::CallIndirect { args, .. } => {
            STANDARD_INST_COST + STANDARD_INST_COST * u32::from(*args)
        }
        Inst::ResolveTarget { .. } => STANDARD_INST_COST,
    }
}

/// Inline cost of a terminator.
pub fn term_cost(term: &Terminator) -> u32 {
    match term {
        // A return or unconditional jump is one instruction.
        Terminator::Return | Terminator::Jump { .. } => STANDARD_INST_COST,
        Terminator::Branch { .. } => STANDARD_INST_COST,
        // A compare-chain switch costs one cmp+jcc pair per case; a
        // jump-table switch costs the bounds check plus the indexed jump.
        Terminator::Switch {
            cases, via_table, ..
        } => {
            if *via_table {
                2 * STANDARD_INST_COST
            } else {
                (cases.len() as u32).max(1) * 2 * STANDARD_INST_COST
            }
        }
    }
}

/// Inline cost ("complexity") of a whole function — the quantity PIBE's
/// Rule 2 (caller budget, threshold 12 000) and Rule 3 (callee impact,
/// threshold 3 000) compare against.
pub fn function_cost(f: &Function) -> u32 {
    // Block-ordered walk: only live instructions count (never the raw pool,
    // which may carry tombstones of deleted calls).
    f.iter_insts().map(inst_cost).sum::<u32>() + f.terms().map(term_cost).sum::<u32>()
}

/// Exact change in a caller's [`function_cost`] from inlining a direct
/// call that passed `call_args` arguments to a callee of cost
/// `callee_cost`.
///
/// The splice adds the callee's whole body (its `Return` terminators
/// become `Jump`s — same cost), removes the call instruction
/// (`5 + 5 * call_args`), and adds one `Jump` where the calling block was
/// split, so the net change is `callee_cost - 5 * call_args` — negative
/// when a tiny callee is reached through a long argument list. The
/// inliner's incremental caller-cost cache applies this delta instead of
/// re-walking the merged body.
pub fn inline_cost_delta(callee_cost: u32, call_args: u8) -> i64 {
    i64::from(callee_cost) - i64::from(STANDARD_INST_COST) * i64::from(call_args)
}

/// Model machine-code bytes of one instruction.
pub fn inst_bytes(inst: &Inst) -> u32 {
    match inst {
        Inst::Op(OpKind::Fence) => 3,
        Inst::Op(_) => 4,
        // call rel32 = 5 bytes, plus one mov per argument.
        Inst::Call { args, .. } => 5 + 4 * u32::from(*args),
        // call *%reg = 3 bytes, plus arg moves.
        Inst::CallIndirect { args, .. } => 3 + 4 * u32::from(*args),
        Inst::ResolveTarget { .. } => 4,
    }
}

/// Model machine-code bytes of a terminator.
pub fn term_bytes(term: &Terminator) -> u32 {
    match term {
        Terminator::Jump { .. } => 5,
        Terminator::Branch { .. } => 8, // cmp/test + jcc
        Terminator::Switch {
            cases, via_table, ..
        } => {
            if *via_table {
                // bounds check + indexed jump + table entries (4B each).
                12 + 4 * cases.len() as u32
            } else {
                8 * (cases.len() as u32).max(1)
            }
        }
        Terminator::Return => 1,
    }
}

/// Model machine-code bytes of a function (blocks laid out consecutively).
///
/// Memoized on the function: copy-on-write bodies are size-summed by every
/// pipeline stage report, so an unchanged body answers from its cache and
/// any `&mut` access recomputes on next call.
pub fn function_bytes(f: &Function) -> u64 {
    if let Some(b) = f.cached_bytes() {
        return b;
    }
    let bytes = f.iter_blocks().map(|(_, b)| block_bytes_of(b) as u64).sum();
    f.set_cached_bytes(bytes);
    bytes
}

fn block_bytes_of(b: crate::func::BlockRef<'_>) -> u32 {
    b.insts().iter().map(inst_bytes).sum::<u32>() + term_bytes(b.term())
}

/// A linear code layout for a module: every function gets a base address and
/// every block an offset, so the simulator's i-cache can map executed code to
/// cache lines. Functions are laid out in id order, 16-byte aligned, mirroring
/// how a linker lays out sections.
#[derive(Debug, Clone)]
pub struct Layout {
    func_base: Vec<u64>,
    block_span: Vec<Vec<(u32, u32)>>, // per function: (offset, bytes) per block
    total: u64,
}

impl Layout {
    /// Computes the layout of `module`.
    pub fn of(module: &crate::Module) -> Self {
        let mut func_base = Vec::with_capacity(module.len());
        let mut block_span = Vec::with_capacity(module.len());
        let mut cursor: u64 = 0;
        for f in module.functions() {
            cursor = (cursor + 15) & !15;
            func_base.push(cursor);
            let mut spans = Vec::with_capacity(f.num_blocks());
            let mut off: u32 = 0;
            for (_, b) in f.iter_blocks() {
                let bytes = block_bytes_of(b);
                spans.push((off, bytes));
                off += bytes;
            }
            cursor += u64::from(off);
            block_span.push(spans);
        }
        Layout {
            func_base,
            block_span,
            total: cursor,
        }
    }

    /// Base address of a function.
    pub fn func_base(&self, f: crate::FuncId) -> u64 {
        self.func_base[f.index()]
    }

    /// Address range `(start, len_bytes)` of a block.
    pub fn block_range(&self, f: crate::FuncId, b: BlockId) -> (u64, u32) {
        let (off, len) = self.block_span[f.index()][b.index()];
        (self.func_base[f.index()] + u64::from(off), len)
    }

    /// Total laid-out code bytes.
    pub fn total_bytes(&self) -> u64 {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::ids::{FuncId, SiteId};
    use crate::Module;

    #[test]
    fn call_cost_follows_paper_formula() {
        let call = Inst::Call {
            site: SiteId::from_raw(0),
            callee: FuncId::from_raw(0),
            args: 3,
        };
        assert_eq!(inst_cost(&call), 5 + 5 * 3);
        assert_eq!(inst_cost(&Inst::Op(OpKind::Alu)), STANDARD_INST_COST);
    }

    #[test]
    fn function_cost_sums_blocks_and_terminators() {
        let mut b = FunctionBuilder::new("f", 0);
        b.ops(OpKind::Alu, 4); // 4*5 = 20
        b.ret(); // 5
        let f = b.build();
        assert_eq!(function_cost(&f), 25);
    }

    #[test]
    fn layout_aligns_functions_and_is_monotone() {
        let mut m = Module::new("m");
        for i in 0..3 {
            let mut b = FunctionBuilder::new(format!("f{i}"), 0);
            b.ops(OpKind::Alu, i + 1);
            b.ret();
            m.add_function(b.build());
        }
        let layout = Layout::of(&m);
        let mut prev = None;
        for id in m.func_ids() {
            let base = layout.func_base(id);
            assert_eq!(base % 16, 0, "function base must be 16-aligned");
            if let Some(p) = prev {
                assert!(base > p);
            }
            prev = Some(base);
        }
        assert!(layout.total_bytes() >= m.code_bytes());
    }

    #[test]
    fn block_ranges_do_not_overlap_within_function() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("f", 0);
        let bb1 = b.new_block();
        b.ops(OpKind::Alu, 2);
        b.jump(bb1);
        b.switch_to(bb1);
        b.ops(OpKind::Load, 3);
        b.ret();
        let f = m.add_function(b.build());
        let layout = Layout::of(&m);
        let (a0, l0) = layout.block_range(f, BlockId::from_raw(0));
        let (a1, _l1) = layout.block_range(f, BlockId::from_raw(1));
        assert_eq!(a0 + u64::from(l0), a1);
    }

    #[test]
    fn jump_table_switch_is_smaller_than_long_cmp_chain() {
        use crate::inst::Terminator;
        let cases: Vec<BlockId> = (0..8).map(BlockId::from_raw).collect();
        let table = Terminator::Switch {
            weights: vec![1; 8],
            cases: cases.clone(),
            default_weight: 1,
            default: BlockId::from_raw(8),
            via_table: true,
        };
        let chain = Terminator::Switch {
            weights: vec![1; 8],
            cases,
            default_weight: 1,
            default: BlockId::from_raw(8),
            via_table: false,
        };
        assert!(term_bytes(&table) < term_bytes(&chain));
        assert!(term_cost(&table) < term_cost(&chain));
    }

    /// `function_bytes` is memoized per body, and every `&mut` accessor
    /// drops the memo — growing a function must be reflected immediately.
    #[test]
    fn byte_cache_invalidated_by_mutation() {
        use crate::inst::{Inst, OpKind};
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("f", 0);
        b.op(OpKind::Alu);
        b.ret();
        let id = m.add_function(b.build());

        let before = function_bytes(m.function(id));
        assert_eq!(before, function_bytes(m.function(id)), "memo is stable");
        m.function_mut(id)
            .insert_inst(BlockId::ENTRY, 0, Inst::Op(OpKind::Load));
        let after = function_bytes(m.function(id));
        assert_eq!(
            after,
            before + u64::from(inst_bytes(&Inst::Op(OpKind::Load)))
        );
    }
}
