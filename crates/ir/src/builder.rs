//! Ergonomic construction of functions.

use crate::func::{Block, FnAttrs, Function};
use crate::ids::{BlockId, FuncId, SiteId};
use crate::inst::{Cond, Inst, OpKind, Terminator};

/// Incrementally builds a [`Function`] block by block.
///
/// The builder maintains a *current block*; instruction-emitting methods
/// append to it and terminator-emitting methods close it. Blocks may be
/// created ahead of time with [`FunctionBuilder::new_block`] and switched to
/// with [`FunctionBuilder::switch_to`], enabling forward branches.
///
/// # Example
///
/// ```
/// use pibe_ir::{FunctionBuilder, OpKind, Cond};
///
/// let mut b = FunctionBuilder::new("f", 1);
/// let exit = b.new_block();
/// b.op(OpKind::Cmp);
/// b.branch(Cond::Random { ptaken_milli: 100 }, exit, exit);
/// b.switch_to(exit);
/// b.ret();
/// let f = b.build();
/// assert_eq!(f.num_blocks(), 2);
/// ```
#[derive(Debug)]
pub struct FunctionBuilder {
    name: String,
    args: u8,
    attrs: FnAttrs,
    frame_bytes: u32,
    blocks: Vec<Option<Block>>,
    current: BlockId,
    pending: Vec<Inst>,
}

impl FunctionBuilder {
    /// Starts building a function with the given name and argument count.
    /// The entry block is created and selected.
    pub fn new(name: impl Into<String>, args: u8) -> Self {
        FunctionBuilder {
            name: name.into(),
            args,
            attrs: FnAttrs::default(),
            frame_bytes: 64,
            blocks: vec![None],
            current: BlockId::ENTRY,
            pending: Vec::new(),
        }
    }

    /// Sets the function attributes.
    pub fn attrs(&mut self, attrs: FnAttrs) -> &mut Self {
        self.attrs = attrs;
        self
    }

    /// Sets the stack frame size in bytes (default 64).
    pub fn frame_bytes(&mut self, bytes: u32) -> &mut Self {
        self.frame_bytes = bytes;
        self
    }

    /// Creates a new, empty block and returns its id without selecting it.
    pub fn new_block(&mut self) -> BlockId {
        let id = BlockId::from_raw(self.blocks.len() as u32);
        self.blocks.push(None);
        id
    }

    /// Selects `block` as the current insertion point.
    ///
    /// # Panics
    /// Panics if the previously current block was left unterminated with
    /// pending instructions, or if `block` is already terminated.
    pub fn switch_to(&mut self, block: BlockId) {
        assert!(
            self.pending.is_empty(),
            "block {} left unterminated",
            self.current
        );
        assert!(
            self.blocks[block.index()].is_none(),
            "block {block} is already terminated"
        );
        self.current = block;
    }

    /// Appends a non-branch op of the given kind.
    pub fn op(&mut self, kind: OpKind) -> &mut Self {
        self.pending.push(Inst::Op(kind));
        self
    }

    /// Appends `n` ops of the given kind.
    pub fn ops(&mut self, kind: OpKind, n: usize) -> &mut Self {
        for _ in 0..n {
            self.pending.push(Inst::Op(kind));
        }
        self
    }

    /// Appends a direct call.
    pub fn call(&mut self, site: SiteId, callee: FuncId, args: u8) -> &mut Self {
        self.pending.push(Inst::Call { site, callee, args });
        self
    }

    /// Appends an (unresolved) indirect call.
    pub fn call_indirect(&mut self, site: SiteId, args: u8) -> &mut Self {
        self.pending.push(Inst::CallIndirect {
            site,
            args,
            resolved: false,
            asm: false,
        });
        self
    }

    /// Appends an indirect call implemented in an inline-assembly macro
    /// (a paravirt hypercall analogue): unhardenable by the compiler.
    pub fn call_indirect_asm(&mut self, site: SiteId, args: u8) -> &mut Self {
        self.pending.push(Inst::CallIndirect {
            site,
            args,
            resolved: false,
            asm: true,
        });
        self
    }

    /// Appends a `ResolveTarget` for `site`.
    pub fn resolve_target(&mut self, site: SiteId) -> &mut Self {
        self.pending.push(Inst::ResolveTarget { site });
        self
    }

    /// Appends an arbitrary instruction.
    pub fn inst(&mut self, inst: Inst) -> &mut Self {
        self.pending.push(inst);
        self
    }

    /// Terminates the current block with an unconditional jump.
    pub fn jump(&mut self, target: BlockId) {
        self.terminate(Terminator::Jump { target });
    }

    /// Terminates the current block with a conditional branch.
    pub fn branch(&mut self, cond: Cond, then_bb: BlockId, else_bb: BlockId) {
        self.terminate(Terminator::Branch {
            cond,
            then_bb,
            else_bb,
        });
    }

    /// Terminates the current block with a switch.
    pub fn switch(
        &mut self,
        weights: Vec<u16>,
        cases: Vec<BlockId>,
        default_weight: u16,
        default: BlockId,
        via_table: bool,
    ) {
        assert_eq!(weights.len(), cases.len(), "weights must parallel cases");
        self.terminate(Terminator::Switch {
            weights,
            cases,
            default_weight,
            default,
            via_table,
        });
    }

    /// Terminates the current block with a return.
    pub fn ret(&mut self) {
        self.terminate(Terminator::Return);
    }

    fn terminate(&mut self, term: Terminator) {
        let insts = std::mem::take(&mut self.pending);
        let slot = &mut self.blocks[self.current.index()];
        assert!(slot.is_none(), "block {} terminated twice", self.current);
        *slot = Some(Block::new(insts, term));
    }

    /// Finishes the function.
    ///
    /// # Panics
    /// Panics if any created block was never terminated.
    pub fn build(self) -> Function {
        assert!(
            self.pending.is_empty(),
            "current block left unterminated in {}",
            self.name
        );
        let blocks: Vec<Block> = self
            .blocks
            .into_iter()
            .enumerate()
            .map(|(i, b)| b.unwrap_or_else(|| panic!("block bb{i} never terminated")))
            .collect();
        Function::new(self.name, self.args, blocks, self.attrs, self.frame_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_line_function() {
        let mut b = FunctionBuilder::new("f", 2);
        b.ops(OpKind::Alu, 3);
        b.ret();
        let f = b.build();
        assert_eq!(f.num_blocks(), 1);
        assert_eq!(f.inst_count(), 3);
        assert_eq!(f.arg_count(), 2);
        assert_eq!(f.return_sites(), 1);
    }

    #[test]
    fn diamond_cfg() {
        let mut b = FunctionBuilder::new("f", 0);
        let then_bb = b.new_block();
        let else_bb = b.new_block();
        let merge = b.new_block();
        b.op(OpKind::Cmp);
        b.branch(Cond::Random { ptaken_milli: 700 }, then_bb, else_bb);
        b.switch_to(then_bb);
        b.op(OpKind::Alu);
        b.jump(merge);
        b.switch_to(else_bb);
        b.op(OpKind::Load);
        b.jump(merge);
        b.switch_to(merge);
        b.ret();
        let f = b.build();
        assert_eq!(f.num_blocks(), 4);
        let succ: Vec<_> = f.block(BlockId::ENTRY).term().successors().collect();
        assert_eq!(succ, vec![then_bb, else_bb]);
    }

    #[test]
    #[should_panic(expected = "never terminated")]
    fn unterminated_block_panics() {
        let mut b = FunctionBuilder::new("f", 0);
        let _orphan = b.new_block();
        b.ret();
        let _ = b.build();
    }

    #[test]
    #[should_panic(expected = "terminated twice")]
    fn double_terminate_panics() {
        let mut b = FunctionBuilder::new("f", 0);
        b.ret();
        b.ret();
    }
}
