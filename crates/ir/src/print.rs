//! Textual rendering of IR, for debugging, docs, and golden tests.

use crate::func::Function;
use crate::inst::{Cond, Inst, OpKind, Terminator};
use crate::Module;
use std::fmt;

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpKind::Alu => "alu",
            OpKind::Mov => "mov",
            OpKind::Cmp => "cmp",
            OpKind::Load => "load",
            OpKind::Store => "store",
            OpKind::Fence => "fence",
        };
        f.write_str(s)
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inst::Op(k) => write!(f, "{k}"),
            Inst::Call { site, callee, args } => {
                write!(f, "call {callee}({args}) !{site}")
            }
            Inst::CallIndirect {
                site,
                args,
                resolved,
                asm,
            } => {
                let star = if *resolved { "*resolved" } else { "*ptr" };
                let asm = if *asm { " [asm]" } else { "" };
                write!(f, "call {star}({args}) !{site}{asm}")
            }
            Inst::ResolveTarget { site } => write!(f, "resolve !{site}"),
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cond::Random { ptaken_milli } => write!(f, "p={ptaken_milli}‰"),
            Cond::TargetIs { site, target } => write!(f, "!{site}=={target}"),
        }
    }
}

impl fmt::Display for Terminator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Terminator::Jump { target } => write!(f, "jmp {target}"),
            Terminator::Branch {
                cond,
                then_bb,
                else_bb,
            } => write!(f, "br {cond} ? {then_bb} : {else_bb}"),
            Terminator::Switch {
                weights,
                cases,
                default_weight,
                default,
                via_table,
            } => {
                let how = if *via_table { "table" } else { "chain" };
                write!(f, "switch[{how}] ")?;
                for (i, (c, w)) in cases.iter().zip(weights).enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{c}:{w}")?;
                }
                write!(f, " default {default}:{default_weight}")
            }
            Terminator::Return => f.write_str("ret"),
        }
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let a = self.attrs();
        let mut attrs = Vec::new();
        if a.noinline {
            attrs.push("noinline");
        }
        if a.optnone {
            attrs.push("optnone");
        }
        if a.inline_asm {
            attrs.push("inline_asm");
        }
        if a.boot_only {
            attrs.push("boot_only");
        }
        let attrs = if attrs.is_empty() {
            String::new()
        } else {
            format!(" [{}]", attrs.join(","))
        };
        writeln!(
            f,
            "fn {}({}) frame={}{attrs} {{  ; {}",
            self.name(),
            self.arg_count(),
            self.frame_bytes(),
            self.id()
        )?;
        for (bid, block) in self.iter_blocks() {
            writeln!(f, "{bid}:")?;
            for inst in block.insts() {
                writeln!(f, "  {inst}")?;
            }
            writeln!(f, "  {}", block.term())?;
        }
        f.write_str("}")
    }
}

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "; module {}", self.name())?;
        for func in self.functions() {
            writeln!(f, "{func}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::{FuncId, SiteId};

    #[test]
    fn function_renders_blocks_and_calls() {
        let mut b = FunctionBuilder::new("demo", 1);
        b.op(OpKind::Alu);
        b.call(SiteId::from_raw(7), FuncId::from_raw(0), 2);
        b.ret();
        let f = b.build();
        let text = f.to_string();
        assert!(text.contains("fn demo(1) frame=64"));
        assert!(text.contains("call @f0(2) !site7"));
        assert!(text.contains("bb0:"));
        assert!(text.ends_with('}'));
    }

    #[test]
    fn module_render_includes_every_function() {
        let mut m = Module::new("mod");
        for name in ["a", "b"] {
            let mut b = FunctionBuilder::new(name, 0);
            b.ret();
            m.add_function(b.build());
        }
        let text = m.to_string();
        assert!(text.contains("fn a(0) frame=64"));
        assert!(text.contains("fn b(0) frame=64"));
    }
}
