//! Parsing the textual IR back into a [`Module`].
//!
//! The grammar is exactly what the `Display` implementations emit (one
//! construct per line), so `parse_module(&module.to_string())` round-trips
//! losslessly — the property test in the workspace's `tests/` asserts it.
//! Useful for golden-test fixtures and for inspecting/editing small modules
//! by hand.

use crate::func::{Block, FnAttrs};
use crate::ids::{BlockId, FuncId, SiteId};
use crate::inst::{Cond, Inst, OpKind, Terminator};
use crate::{FunctionBuilder, Module};
use std::fmt;

/// A parse failure, with the 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Parses the output of `Module`'s `Display` implementation.
///
/// # Errors
/// Returns a [`ParseError`] naming the offending line for any construct the
/// printer would not have produced. The parsed module is *not* verified;
/// run [`Module::verify`] on the result if the text came from an untrusted
/// hand.
pub fn parse_module(text: &str) -> Result<Module, ParseError> {
    let mut module = Module::new("parsed");
    let mut max_site: Option<u64> = None;
    let mut lines = text.lines().enumerate().peekable();

    while let Some((n, raw)) = lines.next() {
        let line = raw.trim_end();
        let lineno = n + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("; module ") {
            module = Module::new(rest.trim().to_string());
            continue;
        }
        if line.starts_with(';') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("fn ") {
            let func = parse_function(rest, lineno, &mut lines, &mut max_site)?;
            module.add_function(func);
            continue;
        }
        return Err(err(lineno, format!("unexpected top-level line: {line:?}")));
    }

    if let Some(max) = max_site {
        // Keep fresh_site collision-free after parsing.
        while module.peek_next_site() <= max {
            let _ = module.fresh_site();
        }
    }
    Ok(module)
}

type Lines<'a> = std::iter::Peekable<std::iter::Enumerate<std::str::Lines<'a>>>;

fn parse_function(
    header_rest: &str,
    header_line: usize,
    lines: &mut Lines<'_>,
    max_site: &mut Option<u64>,
) -> Result<crate::Function, ParseError> {
    // header_rest: `name(args) frame=N [attrs] {  ; @fK`
    let head = header_rest.split("{").next().unwrap_or("").trim();
    let open = head;
    let paren = open
        .find('(')
        .ok_or_else(|| err(header_line, "missing '(' in function header"))?;
    let name = &open[..paren];
    let close = open
        .find(')')
        .ok_or_else(|| err(header_line, "missing ')' in function header"))?;
    let args: u8 = open[paren + 1..close]
        .parse()
        .map_err(|_| err(header_line, "bad argument count"))?;
    let mut frame: u32 = 64;
    let mut attrs = FnAttrs::default();
    for token in open[close + 1..].split_whitespace() {
        if let Some(v) = token.strip_prefix("frame=") {
            frame = v.parse().map_err(|_| err(header_line, "bad frame size"))?;
        } else if let Some(list) = token.strip_prefix('[').and_then(|t| t.strip_suffix(']')) {
            for a in list.split(',') {
                match a {
                    "noinline" => attrs.noinline = true,
                    "optnone" => attrs.optnone = true,
                    "inline_asm" => attrs.inline_asm = true,
                    "boot_only" => attrs.boot_only = true,
                    other => return Err(err(header_line, format!("unknown attribute {other:?}"))),
                }
            }
        } else {
            return Err(err(
                header_line,
                format!("unexpected header token {token:?}"),
            ));
        }
    }

    // Body: blocks of instructions; terminator closes a block.
    let mut blocks: Vec<Block> = Vec::new();
    let mut insts: Vec<Inst> = Vec::new();
    let mut in_block = false;
    loop {
        let Some((n, raw)) = lines.next() else {
            return Err(err(header_line, "unterminated function (missing '}')"));
        };
        let lineno = n + 1;
        let line = raw.trim_end();
        if line == "}" {
            if in_block || !insts.is_empty() {
                return Err(err(lineno, "block not terminated before '}'"));
            }
            break;
        }
        if let Some(label) = line.strip_suffix(':') {
            let expect = format!("bb{}", blocks.len());
            if label != expect {
                return Err(err(lineno, format!("expected label {expect}, got {label}")));
            }
            in_block = true;
            continue;
        }
        let body = line.trim_start();
        if !in_block {
            return Err(err(lineno, "instruction outside a block"));
        }
        if let Some(term) = parse_terminator(body, lineno)? {
            blocks.push(Block::new(std::mem::take(&mut insts), term));
            in_block = false;
        } else {
            insts.push(parse_inst(body, lineno, max_site)?);
        }
    }

    // Reassemble through the builder.
    let mut b = FunctionBuilder::new(name, args);
    b.attrs(attrs);
    b.frame_bytes(frame);
    // Pre-create the remaining blocks so forward references resolve.
    for _ in 1..blocks.len().max(1) {
        b.new_block();
    }
    for (i, block) in blocks.iter().enumerate() {
        if i > 0 {
            b.switch_to(BlockId::from_raw(i as u32));
        }
        for inst in &block.insts {
            b.inst(inst.clone());
        }
        match &block.term {
            Terminator::Jump { target } => b.jump(*target),
            Terminator::Branch {
                cond,
                then_bb,
                else_bb,
            } => b.branch(*cond, *then_bb, *else_bb),
            Terminator::Switch {
                weights,
                cases,
                default_weight,
                default,
                via_table,
            } => b.switch(
                weights.clone(),
                cases.clone(),
                *default_weight,
                *default,
                *via_table,
            ),
            Terminator::Return => b.ret(),
        }
    }
    if blocks.is_empty() {
        return Err(err(header_line, "function has no blocks"));
    }
    Ok(b.build())
}

fn parse_site(tok: &str, lineno: usize, max_site: &mut Option<u64>) -> Result<SiteId, ParseError> {
    let raw = tok
        .strip_prefix("!site")
        .ok_or_else(|| err(lineno, format!("expected !siteN, got {tok:?}")))?
        .parse::<u64>()
        .map_err(|_| err(lineno, "bad site id"))?;
    *max_site = Some(max_site.map_or(raw, |m: u64| m.max(raw)));
    Ok(SiteId::from_raw(raw))
}

fn parse_func_ref(tok: &str, lineno: usize) -> Result<FuncId, ParseError> {
    tok.strip_prefix("@f")
        .and_then(|s| s.parse::<u32>().ok())
        .map(FuncId::from_raw)
        .ok_or_else(|| err(lineno, format!("expected @fN, got {tok:?}")))
}

fn parse_block_ref(tok: &str, lineno: usize) -> Result<BlockId, ParseError> {
    tok.strip_prefix("bb")
        .and_then(|s| s.parse::<u32>().ok())
        .map(BlockId::from_raw)
        .ok_or_else(|| err(lineno, format!("expected bbN, got {tok:?}")))
}

fn parse_inst(body: &str, lineno: usize, max_site: &mut Option<u64>) -> Result<Inst, ParseError> {
    let op = match body {
        "alu" => Some(OpKind::Alu),
        "mov" => Some(OpKind::Mov),
        "cmp" => Some(OpKind::Cmp),
        "load" => Some(OpKind::Load),
        "store" => Some(OpKind::Store),
        "fence" => Some(OpKind::Fence),
        _ => None,
    };
    if let Some(k) = op {
        return Ok(Inst::Op(k));
    }
    if let Some(rest) = body.strip_prefix("resolve ") {
        return Ok(Inst::ResolveTarget {
            site: parse_site(rest.trim(), lineno, max_site)?,
        });
    }
    if let Some(rest) = body.strip_prefix("call ") {
        // `TARGET(args) !siteN [asm]?`
        let mut parts = rest.split_whitespace();
        let target_args = parts
            .next()
            .ok_or_else(|| err(lineno, "call missing target"))?;
        let site_tok = parts
            .next()
            .ok_or_else(|| err(lineno, "call missing site"))?;
        let asm = matches!(parts.next(), Some("[asm]"));
        let paren = target_args
            .find('(')
            .ok_or_else(|| err(lineno, "call missing '('"))?;
        let close = target_args
            .find(')')
            .ok_or_else(|| err(lineno, "call missing ')'"))?;
        let target = &target_args[..paren];
        let args: u8 = target_args[paren + 1..close]
            .parse()
            .map_err(|_| err(lineno, "bad call arg count"))?;
        let site = parse_site(site_tok, lineno, max_site)?;
        return Ok(match target {
            "*ptr" => Inst::CallIndirect {
                site,
                args,
                resolved: false,
                asm,
            },
            "*resolved" => Inst::CallIndirect {
                site,
                args,
                resolved: true,
                asm,
            },
            f => Inst::Call {
                site,
                callee: parse_func_ref(f, lineno)?,
                args,
            },
        });
    }
    Err(err(lineno, format!("unknown instruction {body:?}")))
}

/// Returns `Ok(Some(term))` when `body` is a terminator, `Ok(None)` when it
/// must be an ordinary instruction.
fn parse_terminator(body: &str, lineno: usize) -> Result<Option<Terminator>, ParseError> {
    if body == "ret" {
        return Ok(Some(Terminator::Return));
    }
    if let Some(rest) = body.strip_prefix("jmp ") {
        return Ok(Some(Terminator::Jump {
            target: parse_block_ref(rest.trim(), lineno)?,
        }));
    }
    if let Some(rest) = body.strip_prefix("br ") {
        // `COND ? bbA : bbB`
        let (cond_s, arms) = rest
            .split_once(" ? ")
            .ok_or_else(|| err(lineno, "br missing '?'"))?;
        let (then_s, else_s) = arms
            .split_once(" : ")
            .ok_or_else(|| err(lineno, "br missing ':'"))?;
        let cond = if let Some(p) = cond_s.strip_prefix("p=") {
            let p = p
                .strip_suffix('‰')
                .ok_or_else(|| err(lineno, "probability missing per-mille sign"))?;
            Cond::Random {
                ptaken_milli: p.parse().map_err(|_| err(lineno, "bad probability"))?,
            }
        } else if let Some((site_s, target_s)) = cond_s.split_once("==") {
            let mut unused = None;
            Cond::TargetIs {
                site: parse_site(site_s, lineno, &mut unused)?,
                target: parse_func_ref(target_s, lineno)?,
            }
        } else {
            return Err(err(lineno, format!("unknown condition {cond_s:?}")));
        };
        return Ok(Some(Terminator::Branch {
            cond,
            then_bb: parse_block_ref(then_s.trim(), lineno)?,
            else_bb: parse_block_ref(else_s.trim(), lineno)?,
        }));
    }
    if let Some(rest) = body.strip_prefix("switch[") {
        let (how, rest) = rest
            .split_once("] ")
            .ok_or_else(|| err(lineno, "switch missing ']'"))?;
        let via_table = match how {
            "table" => true,
            "chain" => false,
            other => return Err(err(lineno, format!("unknown switch kind {other:?}"))),
        };
        let (cases_s, default_s) = rest
            .split_once(" default ")
            .ok_or_else(|| err(lineno, "switch missing default"))?;
        let mut cases = Vec::new();
        let mut weights = Vec::new();
        for part in cases_s.split(", ").filter(|p| !p.is_empty()) {
            let (b, w) = part
                .split_once(':')
                .ok_or_else(|| err(lineno, "switch case missing weight"))?;
            cases.push(parse_block_ref(b, lineno)?);
            weights.push(w.parse().map_err(|_| err(lineno, "bad case weight"))?);
        }
        let (db, dw) = default_s
            .split_once(':')
            .ok_or_else(|| err(lineno, "switch default missing weight"))?;
        return Ok(Some(Terminator::Switch {
            weights,
            cases,
            default_weight: dw.parse().map_err(|_| err(lineno, "bad default weight"))?,
            default: parse_block_ref(db, lineno)?,
            via_table,
        }));
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FunctionBuilder, OpKind};

    fn sample_module() -> Module {
        let mut m = Module::new("demo");
        let mut b = FunctionBuilder::new("leaf", 1);
        b.frame_bytes(96);
        b.attrs(FnAttrs {
            noinline: true,
            ..FnAttrs::default()
        });
        b.ops(OpKind::Alu, 2);
        b.ret();
        let leaf = m.add_function(b.build());

        let s1 = m.fresh_site();
        let s2 = m.fresh_site();
        let mut b = FunctionBuilder::new("root", 0);
        let c0 = b.new_block();
        let c1 = b.new_block();
        let merge = b.new_block();
        b.op(OpKind::Cmp);
        b.call(s1, leaf, 1);
        b.resolve_target(s2);
        b.branch(
            Cond::TargetIs {
                site: s2,
                target: leaf,
            },
            c0,
            c1,
        );
        b.switch_to(c0);
        b.op(OpKind::Load);
        b.jump(merge);
        b.switch_to(c1);
        b.inst(Inst::CallIndirect {
            site: s2,
            args: 1,
            resolved: true,
            asm: false,
        });
        b.switch(vec![2, 3], vec![c0, merge], 1, merge, true);
        b.switch_to(merge);
        b.ret();
        m.add_function(b.build());
        m
    }

    #[test]
    fn roundtrip_is_lossless() {
        let m = sample_module();
        let text = m.to_string();
        let parsed = parse_module(&text).expect("parses");
        assert_eq!(parsed.name(), m.name());
        assert_eq!(parsed.len(), m.len());
        for (a, b) in m.functions().iter().zip(parsed.functions()) {
            assert_eq!(a, b, "function {} must round-trip", a.name());
        }
        // And the re-print matches the original text exactly.
        assert_eq!(parsed.to_string(), text);
    }

    #[test]
    fn fresh_sites_after_parse_do_not_collide() {
        let m = sample_module();
        let mut parsed = parse_module(&m.to_string()).unwrap();
        let new_site = parsed.fresh_site();
        assert!(new_site.raw() >= 2, "sites 0 and 1 are taken: {new_site}");
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let bad = "; module x\nfn f(0) frame=64 {  ; @f0\nbb0:\n  frobnicate\n  ret\n}";
        let e = parse_module(bad).unwrap_err();
        assert_eq!(e.line, 4);
        assert!(e.to_string().contains("frobnicate"));
    }

    #[test]
    fn unterminated_function_is_rejected() {
        let bad = "fn f(0) frame=64 {  ; @f0\nbb0:\n  ret\n";
        assert!(parse_module(bad).is_err());
    }

    #[test]
    fn unknown_attribute_is_rejected() {
        let bad = "fn f(0) frame=64 [sparkly] {  ; @f0\nbb0:\n  ret\n}";
        let e = parse_module(bad).unwrap_err();
        assert!(e.message.contains("sparkly"));
    }

    #[test]
    fn asm_marker_roundtrips() {
        let mut m = Module::new("m");
        let s = m.fresh_site();
        let mut b = FunctionBuilder::new("pv", 1);
        b.call_indirect_asm(s, 1);
        b.ret();
        m.add_function(b.build());
        let parsed = parse_module(&m.to_string()).unwrap();
        let f = parsed.function(FuncId::from_raw(0));
        assert!(matches!(
            f.block_insts(crate::BlockId::ENTRY)[0],
            Inst::CallIndirect { asm: true, .. }
        ));
    }
}
