//! Structural verification of modules.
//!
//! The checker is two linear scans per function over the pooled storage:
//! one flat sweep of the instruction pool to collect resolved sites (into a
//! sorted vec — no per-site hashing), then one pass over the block table
//! checking each block's instruction slice and terminator in order. Error
//! precedence matches the historical per-block walk exactly.

use crate::ids::{BlockId, FuncId, SiteId};
use crate::inst::{Cond, Inst, Terminator};
use crate::Module;
use std::fmt;

/// A structural invariant violation found by [`Module::verify`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// A function has no blocks at all.
    EmptyFunction {
        /// The offending function.
        func: FuncId,
    },
    /// A terminator references a block id outside the function.
    DanglingBlock {
        /// The function containing the bad edge.
        func: FuncId,
        /// The block whose terminator is bad.
        block: BlockId,
        /// The out-of-range successor.
        target: BlockId,
    },
    /// A call references a function id outside the module.
    DanglingCallee {
        /// The function containing the bad call.
        func: FuncId,
        /// The out-of-range callee.
        callee: FuncId,
    },
    /// A switch's weights do not parallel its cases.
    MalformedSwitch {
        /// The function containing the bad switch.
        func: FuncId,
        /// The block whose switch is bad.
        block: BlockId,
    },
    /// A `CallIndirect { resolved: true }` or `TargetIs` guard appears with
    /// no preceding `ResolveTarget` for the same site anywhere in the
    /// function (promotion chains must resolve before guarding).
    UnresolvedGuard {
        /// The function containing the bad guard.
        func: FuncId,
    },
    /// The function has no reachable `Return` (every function must be able
    /// to return to its caller).
    NoReturnPath {
        /// The offending function.
        func: FuncId,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::EmptyFunction { func } => write!(f, "function {func} has no blocks"),
            VerifyError::DanglingBlock {
                func,
                block,
                target,
            } => write!(f, "{func}:{block} branches to nonexistent {target}"),
            VerifyError::DanglingCallee { func, callee } => {
                write!(f, "{func} calls nonexistent {callee}")
            }
            VerifyError::MalformedSwitch { func, block } => {
                write!(f, "{func}:{block} switch weights do not parallel cases")
            }
            VerifyError::UnresolvedGuard { func } => {
                write!(f, "{func} guards or consumes an unresolved call target")
            }
            VerifyError::NoReturnPath { func } => {
                write!(f, "{func} has no return block")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// Checks all structural invariants of `module`.
pub fn verify(module: &Module) -> Result<(), VerifyError> {
    verify_with_threads(module, 1)
}

/// Checks all structural invariants of `module`, fanning the per-function
/// checks across up to `threads` workers.
///
/// Functions are verified independently, so the fan-out is safe; on
/// failure the error reported is the one the sequential walk would have
/// found first (the lowest-id offending function), keeping diagnostics
/// deterministic under any thread count.
pub fn verify_with_threads(module: &Module, threads: usize) -> Result<(), VerifyError> {
    let nfuncs = module.len() as u32;
    if threads <= 1 {
        for f in module.functions() {
            verify_function(f, nfuncs)?;
        }
        return Ok(());
    }
    crate::par::map_indexed(module.len(), threads, |i| {
        verify_function(&module.functions()[i], nfuncs)
    })
    .into_iter()
    .collect()
}

/// Checks one function's invariants against a module of `nfuncs` functions.
///
/// A clean result is memoized on the function (copy-on-write bodies are
/// shared across pipeline stages and sibling builds, so re-verifying an
/// unchanged body is the common case). The memo is keyed by `nfuncs`
/// because callee-bounds checks depend on the module size; any mutation
/// through a `&mut` accessor drops it. Errors are never cached.
fn verify_function(f: &crate::func::Function, nfuncs: u32) -> Result<(), VerifyError> {
    if f.is_verified_for(nfuncs as usize) {
        return Ok(());
    }
    verify_function_uncached(f, nfuncs).inspect(|()| f.mark_verified_for(nfuncs as usize))
}

fn verify_function_uncached(f: &crate::func::Function, nfuncs: u32) -> Result<(), VerifyError> {
    let fid = f.id();
    let nblocks = f.num_blocks() as u32;
    if nblocks == 0 {
        return Err(VerifyError::EmptyFunction { func: fid });
    }
    // Collect every resolved site first: transformations (inlining) may
    // reorder block *indices* freely as long as a ResolveTarget precedes
    // its consumers in *control-flow* order, which the executor enforces
    // dynamically. The static check is function-scoped, so this is one flat
    // sweep of the instruction pool (tombstones are plain `Op`s and cannot
    // match) into a sorted vec — membership below is a binary search.
    let mut resolved_sites: Vec<SiteId> = f
        .insts()
        .iter()
        .filter_map(|inst| match inst {
            Inst::ResolveTarget { site } => Some(*site),
            _ => None,
        })
        .collect();
    resolved_sites.sort_unstable();
    let is_resolved = |site: &SiteId| resolved_sites.binary_search(site).is_ok();
    let mut has_return = false;
    for (bid, block) in f.iter_blocks() {
        for inst in block.insts() {
            match inst {
                Inst::Call { callee, .. } => {
                    if callee.index() as u32 >= nfuncs {
                        return Err(VerifyError::DanglingCallee {
                            func: fid,
                            callee: *callee,
                        });
                    }
                }
                Inst::CallIndirect { site, resolved, .. } => {
                    if *resolved && !is_resolved(site) {
                        return Err(VerifyError::UnresolvedGuard { func: fid });
                    }
                }
                Inst::ResolveTarget { .. } | Inst::Op(_) => {}
            }
        }
        match block.term() {
            Terminator::Switch { weights, cases, .. } if weights.len() != cases.len() => {
                return Err(VerifyError::MalformedSwitch {
                    func: fid,
                    block: bid,
                });
            }
            Terminator::Branch {
                cond: Cond::TargetIs { site, target },
                ..
            } => {
                if !is_resolved(site) {
                    return Err(VerifyError::UnresolvedGuard { func: fid });
                }
                if target.index() as u32 >= nfuncs {
                    return Err(VerifyError::DanglingCallee {
                        func: fid,
                        callee: *target,
                    });
                }
            }
            Terminator::Return => has_return = true,
            _ => {}
        }
        for succ in block.term().successors() {
            if succ.index() as u32 >= nblocks {
                return Err(VerifyError::DanglingBlock {
                    func: fid,
                    block: bid,
                    target: succ,
                });
            }
        }
    }
    if !has_return {
        return Err(VerifyError::NoReturnPath { func: fid });
    }
    Ok(())
}

#[cfg(test)]
mod par_tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::OpKind;
    use crate::SiteId;

    /// `k` valid leaves, then broken functions at ids `k` and `k+1`.
    fn module_with_two_bad(k: usize) -> Module {
        let mut m = Module::new("m");
        for i in 0..k {
            let mut b = FunctionBuilder::new(format!("leaf{i}"), 0);
            b.op(OpKind::Alu);
            b.ret();
            m.add_function(b.build());
        }
        for i in 0..2 {
            let mut b = FunctionBuilder::new(format!("bad{i}"), 0);
            b.call(SiteId::from_raw(i), FuncId::from_raw(999), 0);
            b.ret();
            m.add_function(b.build());
        }
        m
    }

    #[test]
    fn threaded_verify_matches_sequential_on_ok_modules() {
        let mut m = Module::new("m");
        for i in 0..64 {
            let mut b = FunctionBuilder::new(format!("f{i}"), 0);
            b.op(OpKind::Alu);
            b.ret();
            m.add_function(b.build());
        }
        for threads in [1, 2, 4] {
            assert_eq!(verify_with_threads(&m, threads), Ok(()));
        }
    }

    #[test]
    fn threaded_verify_reports_the_lowest_id_error() {
        let m = module_with_two_bad(33);
        let sequential = verify(&m).unwrap_err();
        for threads in [2, 4, 8] {
            assert_eq!(verify_with_threads(&m, threads).unwrap_err(), sequential);
        }
        assert!(matches!(
            sequential,
            VerifyError::DanglingCallee { func, .. } if func == FuncId::from_raw(33)
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::func::Block;
    use crate::inst::OpKind;
    use crate::SiteId;

    fn ok_module() -> Module {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("f", 0);
        b.op(OpKind::Alu);
        b.ret();
        m.add_function(b.build());
        m
    }

    #[test]
    fn valid_module_verifies() {
        assert!(ok_module().verify().is_ok());
    }

    #[test]
    fn dangling_callee_rejected() {
        let mut m = ok_module();
        let mut b = FunctionBuilder::new("g", 0);
        b.call(SiteId::from_raw(0), FuncId::from_raw(99), 0);
        b.ret();
        m.add_function(b.build());
        assert!(matches!(
            m.verify(),
            Err(VerifyError::DanglingCallee { .. })
        ));
    }

    #[test]
    fn dangling_block_rejected() {
        let mut m = ok_module();
        let f = m.find_function("f").unwrap();
        *m.function_mut(f).term_mut(BlockId::ENTRY) = Terminator::Jump {
            target: BlockId::from_raw(7),
        };
        assert!(matches!(m.verify(), Err(VerifyError::DanglingBlock { .. })));
    }

    #[test]
    fn missing_return_rejected() {
        let mut m = ok_module();
        let f = m.find_function("f").unwrap();
        *m.function_mut(f).term_mut(BlockId::ENTRY) = Terminator::Jump {
            target: BlockId::from_raw(0),
        };
        assert!(matches!(m.verify(), Err(VerifyError::NoReturnPath { .. })));
    }

    #[test]
    fn unresolved_guard_rejected() {
        let mut m = ok_module();
        let f = m.find_function("f").unwrap();
        m.function_mut(f).set_blocks(vec![Block::new(
            vec![Inst::CallIndirect {
                site: SiteId::from_raw(3),
                args: 0,
                resolved: true,
                asm: false,
            }],
            Terminator::Return,
        )]);
        assert!(matches!(
            m.verify(),
            Err(VerifyError::UnresolvedGuard { .. })
        ));
    }

    #[test]
    fn malformed_switch_rejected() {
        let mut m = ok_module();
        let f = m.find_function("f").unwrap();
        *m.function_mut(f).term_mut(BlockId::ENTRY) = Terminator::Switch {
            weights: vec![1, 2, 3],
            cases: vec![BlockId::from_raw(0)],
            default_weight: 1,
            default: BlockId::from_raw(0),
            via_table: false,
        };
        assert!(matches!(
            m.verify(),
            Err(VerifyError::MalformedSwitch { .. })
        ));
    }

    #[test]
    fn errors_display_meaningfully() {
        let e = VerifyError::EmptyFunction {
            func: FuncId::from_raw(2),
        };
        assert!(e.to_string().contains("@f2"));
    }

    /// A clean verify is memoized, but any `&mut` accessor drops the memo:
    /// corruption introduced *after* a successful verify must still be
    /// caught on the re-check.
    #[test]
    fn verify_cache_invalidated_by_mutation() {
        let mut m = ok_module();
        assert!(m.verify().is_ok());
        let f = m.find_function("f").unwrap();
        *m.function_mut(f).term_mut(BlockId::ENTRY) = Terminator::Jump {
            target: BlockId::from_raw(7),
        };
        assert!(matches!(m.verify(), Err(VerifyError::DanglingBlock { .. })));
    }

    /// The memo is keyed by module size: a body verified against one
    /// function count must re-verify when the count changes, because
    /// callee bounds depend on it. Shrinking the module below a callee's
    /// id must flip a previously clean verify to `DanglingCallee`.
    #[test]
    fn verify_cache_keyed_by_module_size() {
        let mut big = Module::new("big");
        for name in ["pad", "callee"] {
            let mut b = FunctionBuilder::new(name, 0);
            b.op(OpKind::Alu);
            b.ret();
            big.add_function(b.build());
        }
        let s = big.fresh_site();
        let mut b = FunctionBuilder::new("caller", 0);
        b.call(s, FuncId::from_raw(1), 0);
        b.ret();
        let caller = big.add_function(b.build());
        assert!(big.verify().is_ok());

        // Move the caller's verified-clean body into a one-function module:
        // its callee id 1 is now out of range, and the memo from the
        // three-function verify must not leak across the size change.
        let mut small = Module::new("small");
        small.add_function_arc(big.function_arc(caller).clone());
        assert!(matches!(
            small.verify(),
            Err(VerifyError::DanglingCallee { .. })
        ));

        // The shared body stays clean in the original module.
        assert!(big.verify().is_ok());
    }
}
