//! Deterministic fan-out of per-item work across a scoped thread pool.
//!
//! The pattern is the one proven in the build farm: an atomic next-index
//! counter hands items to workers on demand (so an expensive function does
//! not serialize behind a static partition), each worker tags its results
//! with the item index, and the merge reassembles them **in index order**.
//! Scheduling therefore never leaks into outputs: `map_indexed(n, k, f)`
//! returns exactly what `(0..n).map(f).collect()` would, for any `k`.
//!
//! Per-function pipeline stages (harden, DCE edge scanning, verification)
//! fan out through this module; the determinism rule that makes that safe
//! is documented in `DESIGN.md` ("parallel stages merge by function id").

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

/// The environment variable naming the build worker count.
pub const THREADS_VAR: &str = "PIBE_BUILD_THREADS";

/// A malformed thread-count environment variable: the variable name, the
/// rejected value, and why it was rejected. Surfaced as a typed error so a
/// typo'd `PIBE_BUILD_THREADS=eight` fails loudly instead of silently
/// running on a default the operator did not choose.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvThreadsError {
    /// The environment variable that was set.
    pub var: &'static str,
    /// The rejected value, as found in the environment.
    pub value: String,
    /// Why the value was rejected.
    pub reason: EnvThreadsErrorKind,
}

/// Why a thread-count environment value was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnvThreadsErrorKind {
    /// Not an unsigned integer.
    NotANumber,
    /// Parsed, but zero — a pool needs at least one worker.
    Zero,
}

impl fmt::Display for EnvThreadsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.reason {
            EnvThreadsErrorKind::NotANumber => write!(
                f,
                "{}={:?} is not a thread count (expected a positive integer)",
                self.var, self.value
            ),
            EnvThreadsErrorKind::Zero => write!(
                f,
                "{}=0 is not a thread count (a pool needs at least one worker)",
                self.var
            ),
        }
    }
}

impl std::error::Error for EnvThreadsError {}

/// Parses a thread-count value as found under environment variable `var`
/// (`var` is only used for error attribution).
///
/// # Errors
/// Returns [`EnvThreadsError`] when the value is not a positive integer.
pub fn parse_threads(var: &'static str, value: &str) -> Result<usize, EnvThreadsError> {
    match value.trim().parse::<usize>() {
        Ok(0) => Err(EnvThreadsError {
            var,
            value: value.to_string(),
            reason: EnvThreadsErrorKind::Zero,
        }),
        Ok(n) => Ok(n),
        Err(_) => Err(EnvThreadsError {
            var,
            value: value.to_string(),
            reason: EnvThreadsErrorKind::NotANumber,
        }),
    }
}

/// Reads [`THREADS_VAR`] from the environment: `Ok(Some(n))` when set to a
/// positive integer, `Ok(None)` when unset.
///
/// # Errors
/// Returns [`EnvThreadsError`] when the variable is set but malformed —
/// callers with a user interface (the `pibe-suite` binary, the serve
/// loop's config) surface the error; [`default_threads`] panics on it.
pub fn threads_from_env() -> Result<Option<usize>, EnvThreadsError> {
    match std::env::var(THREADS_VAR) {
        Ok(v) => parse_threads(THREADS_VAR, &v).map(Some),
        Err(_) => Ok(None),
    }
}

/// Worker count implied by the environment: the `PIBE_BUILD_THREADS`
/// variable when set to a positive integer, otherwise the machine's
/// available parallelism.
///
/// # Panics
/// Panics (with the [`EnvThreadsError`] message) when the variable is set
/// but malformed. A typo must not silently degrade a measurement run to an
/// unintended thread count; fallible callers use [`threads_from_env`].
pub fn default_threads() -> usize {
    match threads_from_env() {
        Ok(Some(n)) => n,
        Ok(None) => std::thread::available_parallelism().map_or(1, |n| n.get()),
        Err(e) => panic!("{e}"),
    }
}

/// Applies `f` to every index in `0..n` on up to `threads` workers and
/// returns the results in index order.
///
/// The output is bit-identical to the sequential
/// `(0..n).map(f).collect::<Vec<_>>()` regardless of thread count or
/// scheduling; `threads <= 1` (or tiny `n`) short-circuits to exactly that
/// expression, so single-threaded callers pay no pool overhead.
///
/// # Panics
/// Propagates a panic from `f`.
pub fn map_indexed<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.clamp(1, n.max(1));
    if threads <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let next = &next;
    let f = &f;
    let parts: Vec<Vec<(usize, T)>> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(move |_| {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        out.push((i, f(i)));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("par worker panicked"))
            .collect()
    })
    .expect("par scope");

    let mut slots: Vec<Option<T>> = std::iter::repeat_with(|| None).take(n).collect();
    for (i, v) in parts.into_iter().flatten() {
        debug_assert!(slots[i].is_none(), "index produced twice");
        slots[i] = Some(v);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index produced exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        for threads in [1, 2, 4, 7] {
            let got = map_indexed(100, threads, |i| i * i);
            let want: Vec<usize> = (0..100).map(|i| i * i).collect();
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn zero_items_is_fine() {
        let got: Vec<u8> = map_indexed(0, 4, |_| unreachable!());
        assert!(got.is_empty());
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let got = map_indexed(3, 16, |i| i + 1);
        assert_eq!(got, vec![1, 2, 3]);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn parse_threads_accepts_positive_integers() {
        assert_eq!(parse_threads(THREADS_VAR, "1"), Ok(1));
        assert_eq!(parse_threads(THREADS_VAR, " 8 "), Ok(8));
    }

    #[test]
    fn parse_threads_rejects_zero_and_garbage_with_typed_errors() {
        let zero = parse_threads(THREADS_VAR, "0").unwrap_err();
        assert_eq!(zero.reason, EnvThreadsErrorKind::Zero);
        assert!(zero.to_string().contains(THREADS_VAR));

        for bad in ["eight", "-2", "1.5", ""] {
            let err = parse_threads(THREADS_VAR, bad).unwrap_err();
            assert_eq!(err.reason, EnvThreadsErrorKind::NotANumber, "{bad:?}");
            assert_eq!(err.value, bad);
            assert!(err.to_string().contains(THREADS_VAR), "{err}");
        }
    }
}
