//! Deterministic fan-out of per-item work across a scoped thread pool.
//!
//! The pattern is the one proven in the build farm: an atomic next-index
//! counter hands items to workers on demand (so an expensive function does
//! not serialize behind a static partition), each worker tags its results
//! with the item index, and the merge reassembles them **in index order**.
//! Scheduling therefore never leaks into outputs: `map_indexed(n, k, f)`
//! returns exactly what `(0..n).map(f).collect()` would, for any `k`.
//!
//! Per-function pipeline stages (harden, DCE edge scanning, verification)
//! fan out through this module; the determinism rule that makes that safe
//! is documented in `DESIGN.md` ("parallel stages merge by function id").

use std::sync::atomic::{AtomicUsize, Ordering};

/// Worker count implied by the environment: the `PIBE_BUILD_THREADS`
/// variable when set to a positive integer, otherwise the machine's
/// available parallelism.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("PIBE_BUILD_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Applies `f` to every index in `0..n` on up to `threads` workers and
/// returns the results in index order.
///
/// The output is bit-identical to the sequential
/// `(0..n).map(f).collect::<Vec<_>>()` regardless of thread count or
/// scheduling; `threads <= 1` (or tiny `n`) short-circuits to exactly that
/// expression, so single-threaded callers pay no pool overhead.
///
/// # Panics
/// Propagates a panic from `f`.
pub fn map_indexed<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.clamp(1, n.max(1));
    if threads <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let next = &next;
    let f = &f;
    let parts: Vec<Vec<(usize, T)>> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(move |_| {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        out.push((i, f(i)));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("par worker panicked"))
            .collect()
    })
    .expect("par scope");

    let mut slots: Vec<Option<T>> = std::iter::repeat_with(|| None).take(n).collect();
    for (i, v) in parts.into_iter().flatten() {
        debug_assert!(slots[i].is_none(), "index produced twice");
        slots[i] = Some(v);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index produced exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        for threads in [1, 2, 4, 7] {
            let got = map_indexed(100, threads, |i| i * i);
            let want: Vec<usize> = (0..100).map(|i| i * i).collect();
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn zero_items_is_fine() {
        let got: Vec<u8> = map_indexed(0, 4, |_| unreachable!());
        assert!(got.is_empty());
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let got = map_indexed(3, 16, |i| i + 1);
        assert_eq!(got, vec![1, 2, 3]);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
