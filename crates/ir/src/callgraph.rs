//! Static call graph construction and recursion analysis.

use crate::ids::{FuncId, SiteId};
use crate::inst::Inst;
use crate::Module;
use std::collections::HashSet;

/// One static direct-call edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CallGraphEdge {
    /// The calling function.
    pub caller: FuncId,
    /// The called function.
    pub callee: FuncId,
    /// The call site (stable profile identity).
    pub site: SiteId,
}

/// The static direct call graph of a module.
///
/// Indirect edges are not part of the static graph; they become visible only
/// through value profiles (`pibe-profile`), exactly as in the paper's
/// pipeline. The graph answers the two questions PIBE's passes ask:
/// *is this function (mutually) recursive?* (recursive callees are never
/// inlined) and *what is a bottom-up traversal order?* (used by the default
/// LLVM-style inliner baseline).
#[derive(Debug, Clone)]
pub struct CallGraph {
    edges: Vec<CallGraphEdge>,
    callees: Vec<Vec<FuncId>>,
    recursive: Vec<bool>,
}

impl CallGraph {
    /// Builds the call graph of `module`.
    pub fn build(module: &Module) -> Self {
        let n = module.len();
        let mut edges = Vec::new();
        let mut callees: Vec<Vec<FuncId>> = vec![Vec::new(); n];
        for f in module.functions() {
            for block in f.blocks() {
                for inst in &block.insts {
                    if let Inst::Call { site, callee, .. } = inst {
                        edges.push(CallGraphEdge {
                            caller: f.id(),
                            callee: *callee,
                            site: *site,
                        });
                        callees[f.id().index()].push(*callee);
                    }
                }
            }
        }
        let recursive = find_recursive(n, &callees);
        CallGraph {
            edges,
            callees,
            recursive,
        }
    }

    /// All static direct-call edges.
    pub fn edges(&self) -> &[CallGraphEdge] {
        &self.edges
    }

    /// Direct callees of `f` (with multiplicity).
    pub fn callees(&self, f: FuncId) -> &[FuncId] {
        &self.callees[f.index()]
    }

    /// True if `f` participates in a call cycle (directly or mutually
    /// recursive). Such functions are never inlining candidates (§5.2).
    pub fn is_recursive(&self, f: FuncId) -> bool {
        self.recursive[f.index()]
    }

    /// Bottom-up (reverse-topological, callees-before-callers) traversal
    /// order over all functions; members of cycles appear in discovery order.
    pub fn bottom_up_order(&self) -> Vec<FuncId> {
        let n = self.callees.len();
        let mut state = vec![0u8; n]; // 0 unvisited, 1 on stack, 2 done
        let mut order = Vec::with_capacity(n);
        for start in 0..n {
            if state[start] != 0 {
                continue;
            }
            // Iterative DFS with explicit post-visit.
            let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
            state[start] = 1;
            while let Some(&mut (node, ref mut idx)) = stack.last_mut() {
                let outs = &self.callees[node];
                if *idx < outs.len() {
                    let next = outs[*idx].index();
                    *idx += 1;
                    if state[next] == 0 {
                        state[next] = 1;
                        stack.push((next, 0));
                    }
                } else {
                    state[node] = 2;
                    order.push(FuncId::from_raw(node as u32));
                    stack.pop();
                }
            }
        }
        order
    }
}

/// Marks every function that belongs to a nontrivial SCC or has a self loop,
/// using Tarjan's algorithm (iterative).
fn find_recursive(n: usize, callees: &[Vec<FuncId>]) -> Vec<bool> {
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut recursive = vec![false; n];
    let mut counter = 0usize;

    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        // Iterative Tarjan.
        let mut work: Vec<(usize, usize)> = vec![(root, 0)];
        index[root] = counter;
        low[root] = counter;
        counter += 1;
        stack.push(root);
        on_stack[root] = true;

        while let Some(&mut (node, ref mut child_idx)) = work.last_mut() {
            let outs = &callees[node];
            if *child_idx < outs.len() {
                let next = outs[*child_idx].index();
                *child_idx += 1;
                if index[next] == usize::MAX {
                    index[next] = counter;
                    low[next] = counter;
                    counter += 1;
                    stack.push(next);
                    on_stack[next] = true;
                    work.push((next, 0));
                } else if on_stack[next] {
                    low[node] = low[node].min(index[next]);
                }
            } else {
                if low[node] == index[node] {
                    // Pop the SCC rooted at `node`.
                    let mut members = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        members.push(w);
                        if w == node {
                            break;
                        }
                    }
                    if members.len() > 1 {
                        for &m in &members {
                            recursive[m] = true;
                        }
                    } else {
                        // Self-loop?
                        let m = members[0];
                        if callees[m].iter().any(|c| c.index() == m) {
                            recursive[m] = true;
                        }
                    }
                }
                work.pop();
                if let Some(&mut (parent, _)) = work.last_mut() {
                    low[parent] = low[parent].min(low[node]);
                }
            }
        }
    }
    recursive
}

impl CallGraph {
    /// The set of functions reachable from `roots` along direct-call edges.
    pub fn reachable_from(&self, roots: &[FuncId]) -> HashSet<FuncId> {
        let mut seen: HashSet<FuncId> = roots.iter().copied().collect();
        let mut work: Vec<FuncId> = roots.to_vec();
        while let Some(f) = work.pop() {
            for &c in self.callees(f) {
                if seen.insert(c) {
                    work.push(c);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::OpKind;

    /// Builds: main -> a -> b, a -> c, b <-> c (mutual recursion), d -> d.
    fn cyclic_module() -> (Module, Vec<FuncId>) {
        let mut m = Module::new("m");
        // Create placeholders first so we can forward-reference ids.
        let ids: Vec<FuncId> = (0..5)
            .map(|i| {
                let mut b = FunctionBuilder::new(format!("tmp{i}"), 0);
                b.ret();
                m.add_function(b.build())
            })
            .collect();
        let (main, a, bb, c, d) = (ids[0], ids[1], ids[2], ids[3], ids[4]);

        let rebuild = |m: &mut Module, id: FuncId, name: &str, calls: Vec<FuncId>| {
            let mut b = FunctionBuilder::new(name, 0);
            b.op(OpKind::Alu);
            for (i, callee) in calls.iter().enumerate() {
                b.call(
                    SiteId::from_raw(id.index() as u64 * 10 + i as u64),
                    *callee,
                    0,
                );
            }
            b.ret();
            let mut f = b.build();
            f.id = id;
            *m.function_mut(id) = f;
        };
        rebuild(&mut m, main, "main", vec![a]);
        rebuild(&mut m, a, "a", vec![bb, c]);
        rebuild(&mut m, bb, "b", vec![c]);
        rebuild(&mut m, c, "c", vec![bb]);
        rebuild(&mut m, d, "d", vec![d]);
        (m, ids)
    }

    #[test]
    fn recursion_detection_finds_cycles_and_self_loops() {
        let (m, ids) = cyclic_module();
        let g = CallGraph::build(&m);
        assert!(!g.is_recursive(ids[0]), "main is acyclic");
        assert!(!g.is_recursive(ids[1]), "a is acyclic");
        assert!(g.is_recursive(ids[2]), "b is in a cycle");
        assert!(g.is_recursive(ids[3]), "c is in a cycle");
        assert!(g.is_recursive(ids[4]), "d self-recurses");
    }

    #[test]
    fn bottom_up_order_places_callees_first_outside_cycles() {
        let (m, ids) = cyclic_module();
        let g = CallGraph::build(&m);
        let order = g.bottom_up_order();
        assert_eq!(order.len(), m.len());
        let pos = |f: FuncId| order.iter().position(|&x| x == f).unwrap();
        assert!(pos(ids[1]) < pos(ids[0]), "a before main");
        assert!(pos(ids[2]) < pos(ids[1]), "b before a");
    }

    #[test]
    fn reachability_from_roots() {
        let (m, ids) = cyclic_module();
        let g = CallGraph::build(&m);
        let r = g.reachable_from(&[ids[0]]);
        assert!(r.contains(&ids[3]));
        assert!(!r.contains(&ids[4]), "d unreachable from main");
    }

    #[test]
    fn edges_record_sites() {
        let (m, _) = cyclic_module();
        let g = CallGraph::build(&m);
        assert_eq!(g.edges().len(), 6);
        assert!(g.edges().iter().all(|e| e.caller != FuncId::from_raw(99)));
    }
}
