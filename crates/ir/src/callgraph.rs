//! Static call graph construction and recursion analysis.

use crate::ids::{FuncId, SiteId};
use crate::inst::Inst;
use crate::Module;
use std::collections::HashSet;

/// One static direct-call edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CallGraphEdge {
    /// The calling function.
    pub caller: FuncId,
    /// The called function.
    pub callee: FuncId,
    /// The call site (stable profile identity).
    pub site: SiteId,
}

/// The static direct call graph of a module.
///
/// Indirect edges are not part of the static graph; they become visible only
/// through value profiles (`pibe-profile`), exactly as in the paper's
/// pipeline. The graph answers the two questions PIBE's passes ask:
/// *is this function (mutually) recursive?* (recursive callees are never
/// inlined) and *what is a bottom-up traversal order?* (used by the default
/// LLVM-style inliner baseline).
#[derive(Debug, Clone)]
pub struct CallGraph {
    /// Per-caller callee lists; `sites` is the parallel per-caller site
    /// list, so the pair at one index forms an edge. Per-caller storage
    /// keeps [`CallGraph::record_inline`] proportional to the caller's
    /// degree instead of the whole edge set.
    callees: Vec<Vec<FuncId>>,
    sites: Vec<Vec<SiteId>>,
    recursive: Vec<bool>,
}

impl CallGraph {
    /// Builds the call graph of `module`.
    pub fn build(module: &Module) -> Self {
        let n = module.len();
        let mut callees: Vec<Vec<FuncId>> = vec![Vec::new(); n];
        let mut sites: Vec<Vec<SiteId>> = vec![Vec::new(); n];
        for f in module.functions() {
            // Flat pool scan: block structure is irrelevant here and
            // tombstones are plain `Op`s, so one pass over the pool suffices.
            for inst in f.insts() {
                if let Inst::Call { site, callee, .. } = inst {
                    callees[f.id().index()].push(*callee);
                    sites[f.id().index()].push(*site);
                }
            }
        }
        let recursive = tarjan_recursive(n, |i| callees[i].as_slice());
        CallGraph {
            callees,
            sites,
            recursive,
        }
    }

    /// All static direct-call edges, flattened caller-by-caller.
    pub fn edges(&self) -> impl Iterator<Item = CallGraphEdge> + '_ {
        self.callees
            .iter()
            .zip(&self.sites)
            .enumerate()
            .flat_map(|(i, (cs, ss))| {
                cs.iter().zip(ss).map(move |(c, s)| CallGraphEdge {
                    caller: FuncId::from_raw(i as u32),
                    callee: *c,
                    site: *s,
                })
            })
    }

    /// Direct callees of `f` (with multiplicity).
    pub fn callees(&self, f: FuncId) -> &[FuncId] {
        &self.callees[f.index()]
    }

    /// True if `f` participates in a call cycle (directly or mutually
    /// recursive). Such functions are never inlining candidates (§5.2).
    pub fn is_recursive(&self, f: FuncId) -> bool {
        self.recursive[f.index()]
    }

    /// Updates the graph for one performed inline of `callee` into
    /// `caller` through `site`: that edge disappears (the call was elided)
    /// and the callee's direct sites copied into the caller — `copied`,
    /// the `(site, callee)` pairs [`InlinedCall`] reports — become new
    /// caller edges. O(caller degree + copied), no module re-walk.
    ///
    /// The recursion analysis is deliberately *not* recomputed, because it
    /// cannot change: every added edge `caller → g` is a shortcut of the
    /// existing path `caller → callee → g`, so it creates no cycle that
    /// was not already there, and the removed edge never participated in a
    /// cycle (recursive callees are never inlined — a caller in a cycle
    /// through `callee` would make `callee` recursive). Edge *set*
    /// equality with a rebuilt graph is guaranteed; the per-caller order
    /// of edges may differ from block order in the transformed module.
    ///
    /// [`InlinedCall`]: ../pibe_passes/struct.InlinedCall.html
    pub fn record_inline(
        &mut self,
        caller: FuncId,
        callee: FuncId,
        site: SiteId,
        copied: &[(SiteId, FuncId)],
    ) {
        let i = caller.index();
        if let Some(p) = self.sites[i]
            .iter()
            .zip(&self.callees[i])
            .position(|(s, c)| *s == site && *c == callee)
        {
            self.sites[i].remove(p);
            self.callees[i].remove(p);
        }
        for (s, c) in copied {
            self.sites[i].push(*s);
            self.callees[i].push(*c);
        }
    }

    /// Bottom-up (reverse-topological, callees-before-callers) traversal
    /// order over all functions; members of cycles appear in discovery order.
    pub fn bottom_up_order(&self) -> Vec<FuncId> {
        let n = self.callees.len();
        let mut state = vec![0u8; n]; // 0 unvisited, 1 on stack, 2 done
        let mut order = Vec::with_capacity(n);
        for start in 0..n {
            if state[start] != 0 {
                continue;
            }
            // Iterative DFS with explicit post-visit.
            let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
            state[start] = 1;
            while let Some(&mut (node, ref mut idx)) = stack.last_mut() {
                let outs = &self.callees[node];
                if *idx < outs.len() {
                    let next = outs[*idx].index();
                    *idx += 1;
                    if state[next] == 0 {
                        state[next] = 1;
                        stack.push((next, 0));
                    }
                } else {
                    state[node] = 2;
                    order.push(FuncId::from_raw(node as u32));
                    stack.pop();
                }
            }
        }
        order
    }
}

/// Per-function recursion marks straight from a flat CSR adjacency:
/// `callees[offsets[i] .. offsets[i + 1]]` are function `i`'s direct
/// callees (with multiplicity). `offsets` has one trailing entry, so it is
/// one longer than the function count.
///
/// This is the allocation-light path for consumers that only need the
/// *recursive?* answer — notably the inliner, which rejects recursive
/// callees (§5.2) but never walks edges: inlining only ever shortcuts
/// existing paths, so the marks stay valid while it transforms the module.
/// Building a full [`CallGraph`] materializes two per-caller `Vec`s per
/// function; this touches three flat arrays.
pub fn recursive_marks(offsets: &[u32], callees: &[FuncId]) -> Vec<bool> {
    let n = offsets.len().saturating_sub(1);
    tarjan_recursive(n, |i| {
        &callees[offsets[i] as usize..offsets[i + 1] as usize]
    })
}

/// Marks every function that belongs to a nontrivial SCC or has a self loop,
/// using Tarjan's algorithm (iterative) over any slice-adjacency.
fn tarjan_recursive<'a>(n: usize, callees: impl Fn(usize) -> &'a [FuncId]) -> Vec<bool> {
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut recursive = vec![false; n];
    let mut counter = 0usize;

    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        // Iterative Tarjan.
        let mut work: Vec<(usize, usize)> = vec![(root, 0)];
        index[root] = counter;
        low[root] = counter;
        counter += 1;
        stack.push(root);
        on_stack[root] = true;

        while let Some(&mut (node, ref mut child_idx)) = work.last_mut() {
            let outs = callees(node);
            if *child_idx < outs.len() {
                let next = outs[*child_idx].index();
                *child_idx += 1;
                if index[next] == usize::MAX {
                    index[next] = counter;
                    low[next] = counter;
                    counter += 1;
                    stack.push(next);
                    on_stack[next] = true;
                    work.push((next, 0));
                } else if on_stack[next] {
                    low[node] = low[node].min(index[next]);
                }
            } else {
                if low[node] == index[node] {
                    // Pop the SCC rooted at `node`.
                    let mut members = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        members.push(w);
                        if w == node {
                            break;
                        }
                    }
                    if members.len() > 1 {
                        for &m in &members {
                            recursive[m] = true;
                        }
                    } else {
                        // Self-loop?
                        let m = members[0];
                        if callees(m).iter().any(|c| c.index() == m) {
                            recursive[m] = true;
                        }
                    }
                }
                work.pop();
                if let Some(&mut (parent, _)) = work.last_mut() {
                    low[parent] = low[parent].min(low[node]);
                }
            }
        }
    }
    recursive
}

impl CallGraph {
    /// The set of functions reachable from `roots` along direct-call edges.
    pub fn reachable_from(&self, roots: &[FuncId]) -> HashSet<FuncId> {
        let mut seen: HashSet<FuncId> = roots.iter().copied().collect();
        let mut work: Vec<FuncId> = roots.to_vec();
        while let Some(f) = work.pop() {
            for &c in self.callees(f) {
                if seen.insert(c) {
                    work.push(c);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::OpKind;

    /// Builds: main -> a -> b, a -> c, b <-> c (mutual recursion), d -> d.
    fn cyclic_module() -> (Module, Vec<FuncId>) {
        let mut m = Module::new("m");
        // Create placeholders first so we can forward-reference ids.
        let ids: Vec<FuncId> = (0..5)
            .map(|i| {
                let mut b = FunctionBuilder::new(format!("tmp{i}"), 0);
                b.ret();
                m.add_function(b.build())
            })
            .collect();
        let (main, a, bb, c, d) = (ids[0], ids[1], ids[2], ids[3], ids[4]);

        let rebuild = |m: &mut Module, id: FuncId, name: &str, calls: Vec<FuncId>| {
            let mut b = FunctionBuilder::new(name, 0);
            b.op(OpKind::Alu);
            for (i, callee) in calls.iter().enumerate() {
                b.call(
                    SiteId::from_raw(id.index() as u64 * 10 + i as u64),
                    *callee,
                    0,
                );
            }
            b.ret();
            let mut f = b.build();
            f.id = id;
            *m.function_mut(id) = f;
        };
        rebuild(&mut m, main, "main", vec![a]);
        rebuild(&mut m, a, "a", vec![bb, c]);
        rebuild(&mut m, bb, "b", vec![c]);
        rebuild(&mut m, c, "c", vec![bb]);
        rebuild(&mut m, d, "d", vec![d]);
        (m, ids)
    }

    #[test]
    fn recursion_detection_finds_cycles_and_self_loops() {
        let (m, ids) = cyclic_module();
        let g = CallGraph::build(&m);
        assert!(!g.is_recursive(ids[0]), "main is acyclic");
        assert!(!g.is_recursive(ids[1]), "a is acyclic");
        assert!(g.is_recursive(ids[2]), "b is in a cycle");
        assert!(g.is_recursive(ids[3]), "c is in a cycle");
        assert!(g.is_recursive(ids[4]), "d self-recurses");
    }

    #[test]
    fn bottom_up_order_places_callees_first_outside_cycles() {
        let (m, ids) = cyclic_module();
        let g = CallGraph::build(&m);
        let order = g.bottom_up_order();
        assert_eq!(order.len(), m.len());
        let pos = |f: FuncId| order.iter().position(|&x| x == f).unwrap();
        assert!(pos(ids[1]) < pos(ids[0]), "a before main");
        assert!(pos(ids[2]) < pos(ids[1]), "b before a");
    }

    #[test]
    fn reachability_from_roots() {
        let (m, ids) = cyclic_module();
        let g = CallGraph::build(&m);
        let r = g.reachable_from(&[ids[0]]);
        assert!(r.contains(&ids[3]));
        assert!(!r.contains(&ids[4]), "d unreachable from main");
    }

    #[test]
    fn edges_record_sites() {
        let (m, _) = cyclic_module();
        let g = CallGraph::build(&m);
        assert_eq!(g.edges().count(), 6);
        assert!(g.edges().all(|e| e.caller != FuncId::from_raw(99)));
    }

    #[test]
    fn record_inline_matches_a_rebuilt_graph() {
        // root --s0--> mid --s1--> leaf: inline mid into root; the s0 edge
        // disappears and root gains a copied s1 edge to leaf.
        let mut m = Module::new("m");
        let mk = |m: &mut Module, name: &str, calls: Vec<(SiteId, FuncId)>| {
            let mut b = FunctionBuilder::new(name, 0);
            b.op(OpKind::Alu);
            for (s, c) in calls {
                b.call(s, c, 0);
            }
            b.ret();
            m.add_function(b.build())
        };
        let leaf = mk(&mut m, "leaf", vec![]);
        let s1 = m.fresh_site();
        let mid = mk(&mut m, "mid", vec![(s1, leaf)]);
        let s0 = m.fresh_site();
        let root = mk(&mut m, "root", vec![(s0, mid)]);

        let mut g = CallGraph::build(&m);
        g.record_inline(root, mid, s0, &[(s1, leaf)]);

        assert_eq!(g.callees(root), &[leaf]);
        assert_eq!(g.callees(mid), &[leaf], "the callee itself is untouched");
        let mut got: Vec<_> = g.edges().map(|e| (e.caller, e.site, e.callee)).collect();
        got.sort();
        assert_eq!(
            got,
            vec![(mid, s1, leaf), (root, s1, leaf)],
            "edge set matches what rebuilding after the transform would give"
        );
        assert!(m.func_ids().all(|f| !g.is_recursive(f)));
    }
}
