//! Functions and basic blocks.

use crate::ids::{BlockId, FuncId, SiteId};
use crate::inst::{Inst, Terminator};
use serde::{Deserialize, Serialize};

/// A basic block: straight-line instructions ended by one terminator.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Block {
    /// The block's non-terminator instructions, in execution order.
    pub insts: Vec<Inst>,
    /// The block's terminator.
    pub term: Terminator,
}

impl Block {
    /// Creates a block with the given instructions and terminator.
    pub fn new(insts: Vec<Inst>, term: Terminator) -> Self {
        Block { insts, term }
    }

    /// Iterates over the call sites appearing in this block.
    pub fn call_sites(&self) -> impl Iterator<Item = SiteId> + '_ {
        self.insts.iter().filter_map(Inst::call_site)
    }
}

/// Function attributes constraining what the optimizer may do.
///
/// These model the attribute set the paper's Table 9 groups under "other"
/// inlining inhibitors: `optnone` callers, `noinline` callees, and the
/// paravirtualised inline-assembly call sites (§8.6) that LLVM's retpoline
/// pass cannot instrument.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FnAttrs {
    /// Never inline this function into callers.
    pub noinline: bool,
    /// Never optimize call sites *inside* this function.
    pub optnone: bool,
    /// The function body is (modelled) inline assembly, e.g. a kernel
    /// paravirt hypercall macro. Its indirect calls cannot be hardened by
    /// the compiler and stay vulnerable even under full mitigation
    /// (the 41 "Vuln. ICalls" of Table 11).
    pub inline_asm: bool,
    /// Executes only during system boot; its branches are not reachable by
    /// transient attacks after boot (§8.6) and are excluded from the audit's
    /// vulnerable counts.
    pub boot_only: bool,
}

/// A function: an argument count, a CFG of blocks, attributes, and a stack
/// frame size used by the simulator's stack accounting (the resource Rule 2
/// of the inliner protects).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Function {
    pub(crate) name: String,
    pub(crate) id: FuncId,
    pub(crate) args: u8,
    pub(crate) blocks: Vec<Block>,
    pub(crate) attrs: FnAttrs,
    pub(crate) frame_bytes: u32,
}

impl Function {
    /// Creates a function. `id` is assigned when added to a module; use
    /// [`FunctionBuilder`](crate::FunctionBuilder) rather than calling this
    /// directly.
    pub(crate) fn new(
        name: String,
        args: u8,
        blocks: Vec<Block>,
        attrs: FnAttrs,
        frame_bytes: u32,
    ) -> Self {
        Function {
            name,
            id: FuncId::from_raw(u32::MAX),
            args,
            blocks,
            attrs,
            frame_bytes,
        }
    }

    /// The function's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The function's id within its module.
    pub fn id(&self) -> FuncId {
        self.id
    }

    /// Number of formal arguments.
    pub fn arg_count(&self) -> u8 {
        self.args
    }

    /// The function's attributes.
    pub fn attrs(&self) -> FnAttrs {
        self.attrs
    }

    /// Mutable access to the attributes.
    pub fn attrs_mut(&mut self) -> &mut FnAttrs {
        &mut self.attrs
    }

    /// Stack frame size in bytes.
    pub fn frame_bytes(&self) -> u32 {
        self.frame_bytes
    }

    /// Sets the stack frame size (inlining grows the caller's frame).
    pub fn set_frame_bytes(&mut self, bytes: u32) {
        self.frame_bytes = bytes;
    }

    /// The function's basic blocks; index 0 is the entry block.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Mutable access to the blocks (transform passes only — keep the CFG
    /// consistent and re-verify the module afterwards).
    pub fn blocks_mut(&mut self) -> &mut Vec<Block> {
        &mut self.blocks
    }

    /// Returns the block with the given id.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Iterates over `(BlockId, &Block)` pairs.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (BlockId, &Block)> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (BlockId::from_raw(i as u32), b))
    }

    /// Number of static return sites (blocks terminated by `Return`).
    pub fn return_sites(&self) -> usize {
        self.blocks.iter().filter(|b| b.term.is_return()).count()
    }

    /// Iterates over every instruction in the function.
    pub fn iter_insts(&self) -> impl Iterator<Item = &Inst> {
        self.blocks.iter().flat_map(|b| b.insts.iter())
    }

    /// Total instruction count (excluding terminators).
    pub fn inst_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::OpKind;

    fn two_block_function() -> Function {
        let b0 = Block::new(
            vec![Inst::Op(OpKind::Alu)],
            Terminator::Jump {
                target: BlockId::from_raw(1),
            },
        );
        let b1 = Block::new(
            vec![Inst::Call {
                site: SiteId::from_raw(1),
                callee: FuncId::from_raw(0),
                args: 0,
            }],
            Terminator::Return,
        );
        Function::new("f".into(), 0, vec![b0, b1], FnAttrs::default(), 64)
    }

    #[test]
    fn block_call_sites_are_listed() {
        let f = two_block_function();
        let sites: Vec<_> = f.block(BlockId::from_raw(1)).call_sites().collect();
        assert_eq!(sites, vec![SiteId::from_raw(1)]);
    }

    #[test]
    fn return_site_count() {
        let f = two_block_function();
        assert_eq!(f.return_sites(), 1);
        assert_eq!(f.inst_count(), 2);
    }

    #[test]
    fn attrs_default_to_all_false() {
        let a = FnAttrs::default();
        assert!(!a.noinline && !a.optnone && !a.inline_asm && !a.boot_only);
    }
}
