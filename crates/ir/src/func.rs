//! Functions and basic blocks, stored as contiguous pools.
//!
//! A [`Function`] keeps **one instruction pool** (`Vec<Inst>`) and **one
//! block pool** (`Vec<BlockMeta>`) instead of a `Vec` of heap-allocated
//! blocks. Each block is a `(start, len)` range into the instruction pool
//! plus its [`Terminator`], so whole-function walks — the verifier, DCE's
//! out-edge scan, the census, the cost models — are linear scans over two
//! flat arrays with no per-block pointer chasing. See `docs/IR.md` for the
//! layout, its invariants, and how the structural editors below maintain
//! them.
//!
//! [`Block`] (owned instructions + terminator) survives as the *edit
//! representation*: builders and structural rewrites assemble `Block`s and
//! pack them via [`Function::set_blocks`]; readers get [`BlockRef`] views
//! that borrow straight from the pools.

use crate::ids::{BlockId, FuncId, SiteId, Symbol};
use crate::inst::{Inst, OpKind, Terminator};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// A basic block in its *owned* form: straight-line instructions ended by
/// one terminator.
///
/// This is the edit representation — what [`FunctionBuilder`] terminates,
/// what [`Function::to_blocks`] materializes, and what
/// [`Function::set_blocks`] packs back into the pools. Inside a built
/// [`Function`] blocks exist only as ranges; use [`Function::block`] to get
/// a borrowing [`BlockRef`] view.
///
/// [`FunctionBuilder`]: crate::FunctionBuilder
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Block {
    /// The block's non-terminator instructions, in execution order.
    pub insts: Vec<Inst>,
    /// The block's terminator.
    pub term: Terminator,
}

impl Block {
    /// Creates a block with the given instructions and terminator.
    pub fn new(insts: Vec<Inst>, term: Terminator) -> Self {
        Block { insts, term }
    }

    /// Iterates over the call sites appearing in this block.
    pub fn call_sites(&self) -> impl Iterator<Item = SiteId> + '_ {
        self.insts.iter().filter_map(Inst::call_site)
    }
}

/// One block's packed record: a range into the function's instruction pool
/// plus the terminator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct BlockMeta {
    pub(crate) start: u32,
    pub(crate) len: u32,
    pub(crate) term: Terminator,
}

/// A borrowed view of one block inside a [`Function`]: a slice of the
/// instruction pool plus the terminator.
#[derive(Debug, Clone, Copy)]
pub struct BlockRef<'a> {
    insts: &'a [Inst],
    term: &'a Terminator,
}

impl<'a> BlockRef<'a> {
    /// The block's non-terminator instructions, in execution order.
    pub fn insts(self) -> &'a [Inst] {
        self.insts
    }

    /// The block's terminator.
    pub fn term(self) -> &'a Terminator {
        self.term
    }

    /// Number of non-terminator instructions.
    pub fn len(self) -> usize {
        self.insts.len()
    }

    /// True when the block carries only a terminator.
    pub fn is_empty(self) -> bool {
        self.insts.is_empty()
    }

    /// Iterates over the call sites appearing in this block.
    pub fn call_sites(self) -> impl Iterator<Item = SiteId> + 'a {
        self.insts.iter().filter_map(Inst::call_site)
    }

    /// Materializes the block into its owned edit representation.
    pub fn to_block(self) -> Block {
        Block::new(self.insts.to_vec(), self.term.clone())
    }
}

/// Function attributes constraining what the optimizer may do.
///
/// These model the attribute set the paper's Table 9 groups under "other"
/// inlining inhibitors: `optnone` callers, `noinline` callees, and the
/// paravirtualised inline-assembly call sites (§8.6) that LLVM's retpoline
/// pass cannot instrument.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FnAttrs {
    /// Never inline this function into callers.
    pub noinline: bool,
    /// Never optimize call sites *inside* this function.
    pub optnone: bool,
    /// The function body is (modelled) inline assembly, e.g. a kernel
    /// paravirt hypercall macro. Its indirect calls cannot be hardened by
    /// the compiler and stay vulnerable even under full mitigation
    /// (the 41 "Vuln. ICalls" of Table 11).
    pub inline_asm: bool,
    /// Executes only during system boot; its branches are not reachable by
    /// transient attacks after boot (§8.6) and are excluded from the audit's
    /// vulnerable counts.
    pub boot_only: bool,
}

/// A function: an argument count, a CFG of blocks over a flat instruction
/// pool, attributes, and a stack frame size used by the simulator's stack
/// accounting (the resource Rule 2 of the inliner protects).
///
/// # Pool invariants
///
/// * Block ranges are disjoint and lie inside the instruction pool.
/// * Ranges need not be contiguous or in pool order: the structural editors
///   ([`split_block`](Function::split_block),
///   [`splice_body`](Function::splice_body)) leave *tombstones* — dead
///   `Op(Mov)` slots — where an instruction was deleted, so a splice is
///   pure range arithmetic plus one `memcpy` of the donor body. Tombstones
///   are never reachable through any block range.
/// * The canonical instruction order is **block order**
///   ([`iter_insts`](Function::iter_insts)); raw-pool walks
///   ([`insts`](Function::insts)) additionally see tombstones and must only
///   be used for scans where a dead `Op` cannot change the answer (e.g.
///   filtering for calls).
///
/// Equality, hashing of names, serialization, and printing all use the
/// canonical block order, so two functions that differ only in tombstone
/// layout compare equal and serialize identically ([`set_blocks`]
/// re-packs, dropping tombstones).
///
/// # Memoized analyses
///
/// Because functions are shared copy-on-write (`Arc<Function>` inside a
/// module), an unchanged body is typically verified and size-costed many
/// times across pipeline stages and sibling builds. Two interior-mutable
/// caches make those repeats free: the last clean verification (keyed by
/// the module size it was checked against) and the encoded byte size.
/// Every `&mut self` accessor invalidates both, the caches survive
/// `Clone`, and they are invisible to equality, serialization, and
/// printing.
///
/// [`set_blocks`]: Function::set_blocks
#[derive(Debug)]
pub struct Function {
    pub(crate) name: Symbol,
    pub(crate) id: FuncId,
    pub(crate) args: u8,
    pub(crate) attrs: FnAttrs,
    pub(crate) frame_bytes: u32,
    pub(crate) insts: Vec<Inst>,
    pub(crate) blocks: Vec<BlockMeta>,
    /// `nfuncs + 1` of the module this body last verified clean against;
    /// 0 means dirty. Exact-match keyed: DCE shrinks the module, so a
    /// survivor re-verifies against the new function count.
    verified_ok: AtomicU32,
    /// Memoized encoded byte size; `u64::MAX` means dirty.
    cached_bytes: AtomicU64,
}

impl Clone for Function {
    fn clone(&self) -> Self {
        Function {
            name: self.name,
            id: self.id,
            args: self.args,
            attrs: self.attrs,
            frame_bytes: self.frame_bytes,
            insts: self.insts.clone(),
            blocks: self.blocks.clone(),
            // A clone of a verified body is still verified.
            verified_ok: AtomicU32::new(self.verified_ok.load(Ordering::Relaxed)),
            cached_bytes: AtomicU64::new(self.cached_bytes.load(Ordering::Relaxed)),
        }
    }
}

/// The tombstone written over deleted instruction slots. A plain register
/// move: harmless to every raw-pool filter (it is not a call, resolve, or
/// fence) and carries no ids that could dangle.
const TOMBSTONE: Inst = Inst::Op(OpKind::Mov);

impl Function {
    /// Creates a function from owned blocks. `id` is assigned when added to
    /// a module; use [`FunctionBuilder`](crate::FunctionBuilder) rather than
    /// calling this directly.
    pub(crate) fn new(
        name: String,
        args: u8,
        blocks: Vec<Block>,
        attrs: FnAttrs,
        frame_bytes: u32,
    ) -> Self {
        let mut f = Function {
            name: Symbol::intern(&name),
            id: FuncId::from_raw(u32::MAX),
            args,
            attrs,
            frame_bytes,
            insts: Vec::new(),
            blocks: Vec::new(),
            verified_ok: AtomicU32::new(0),
            cached_bytes: AtomicU64::new(u64::MAX),
        };
        f.set_blocks(blocks);
        f
    }

    /// Drops both memoized analyses. Called by every `&mut self` accessor
    /// that can change what the verifier or the size model would see.
    #[inline]
    fn invalidate(&mut self) {
        *self.verified_ok.get_mut() = 0;
        *self.cached_bytes.get_mut() = u64::MAX;
    }

    /// True when this body verified clean against a module of `nfuncs`
    /// functions and has not been mutated since.
    pub(crate) fn is_verified_for(&self, nfuncs: usize) -> bool {
        let key = u32::try_from(nfuncs).ok().and_then(|n| n.checked_add(1));
        key.is_some_and(|k| self.verified_ok.load(Ordering::Relaxed) == k)
    }

    /// Records a clean verification against a module of `nfuncs` functions.
    pub(crate) fn mark_verified_for(&self, nfuncs: usize) {
        if let Some(key) = u32::try_from(nfuncs).ok().and_then(|n| n.checked_add(1)) {
            self.verified_ok.store(key, Ordering::Relaxed);
        }
    }

    /// The memoized encoded byte size, if still valid.
    pub(crate) fn cached_bytes(&self) -> Option<u64> {
        match self.cached_bytes.load(Ordering::Relaxed) {
            u64::MAX => None,
            v => Some(v),
        }
    }

    /// Memoizes the encoded byte size computed by the size model.
    pub(crate) fn set_cached_bytes(&self, bytes: u64) {
        if bytes != u64::MAX {
            self.cached_bytes.store(bytes, Ordering::Relaxed);
        }
    }

    /// The function's name.
    pub fn name(&self) -> &str {
        self.name.as_str()
    }

    /// The function's interned name.
    pub fn symbol(&self) -> Symbol {
        self.name
    }

    /// The function's id within its module.
    pub fn id(&self) -> FuncId {
        self.id
    }

    /// Number of formal arguments.
    pub fn arg_count(&self) -> u8 {
        self.args
    }

    /// The function's attributes.
    pub fn attrs(&self) -> FnAttrs {
        self.attrs
    }

    /// Mutable access to the attributes.
    pub fn attrs_mut(&mut self) -> &mut FnAttrs {
        self.invalidate();
        &mut self.attrs
    }

    /// Stack frame size in bytes.
    pub fn frame_bytes(&self) -> u32 {
        self.frame_bytes
    }

    /// Sets the stack frame size (inlining grows the caller's frame).
    pub fn set_frame_bytes(&mut self, bytes: u32) {
        self.invalidate();
        self.frame_bytes = bytes;
    }

    /// Number of basic blocks; block ids are `0..num_blocks()`, id 0 is the
    /// entry block.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Returns a borrowed view of the block with the given id.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn block(&self, id: BlockId) -> BlockRef<'_> {
        let m = &self.blocks[id.index()];
        BlockRef {
            insts: &self.insts[m.start as usize..(m.start + m.len) as usize],
            term: &m.term,
        }
    }

    /// The instructions of one block, as a slice of the pool.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn block_insts(&self, id: BlockId) -> &[Inst] {
        let m = &self.blocks[id.index()];
        &self.insts[m.start as usize..(m.start + m.len) as usize]
    }

    /// Mutable access to one block's instructions, in place. The block
    /// cannot grow or shrink through this — use the structural editors or
    /// [`set_blocks`](Function::set_blocks) for that.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn block_insts_mut(&mut self, id: BlockId) -> &mut [Inst] {
        self.invalidate();
        let m = &self.blocks[id.index()];
        &mut self.insts[m.start as usize..(m.start + m.len) as usize]
    }

    /// The terminator of one block.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn term(&self, id: BlockId) -> &Terminator {
        &self.blocks[id.index()].term
    }

    /// Mutable access to one block's terminator (transform passes only —
    /// keep the CFG consistent and re-verify the module afterwards).
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn term_mut(&mut self, id: BlockId) -> &mut Terminator {
        self.invalidate();
        &mut self.blocks[id.index()].term
    }

    /// Iterates over every block's terminator in block order.
    pub fn terms(&self) -> impl Iterator<Item = &Terminator> {
        self.blocks.iter().map(|m| &m.term)
    }

    /// Mutably iterates over every block's terminator in block order
    /// (transform passes only — keep the CFG consistent).
    pub fn terms_mut(&mut self) -> impl Iterator<Item = &mut Terminator> {
        self.invalidate();
        self.blocks.iter_mut().map(|m| &mut m.term)
    }

    /// Iterates over `(BlockId, BlockRef)` pairs in block order.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (BlockId, BlockRef<'_>)> {
        self.blocks.iter().enumerate().map(|(i, m)| {
            (
                BlockId::from_raw(i as u32),
                BlockRef {
                    insts: &self.insts[m.start as usize..(m.start + m.len) as usize],
                    term: &m.term,
                },
            )
        })
    }

    /// The **raw instruction pool**, including tombstones of deleted
    /// instructions (dead `Op(Mov)` slots unreachable from any block).
    ///
    /// This is the fastest way to sweep a whole body, but only valid for
    /// scans where an extra dead `Op` cannot change the answer — filtering
    /// for calls, resolves, or guards is safe; counting or costing ops is
    /// not (use [`iter_insts`](Function::iter_insts)).
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// Mutable access to the raw instruction pool (same tombstone caveat as
    /// [`insts`](Function::insts)); in-place rewrites only.
    pub fn insts_mut(&mut self) -> &mut [Inst] {
        self.invalidate();
        &mut self.insts
    }

    /// Iterates over every *live* instruction in canonical block order.
    pub fn iter_insts(&self) -> impl Iterator<Item = &Inst> {
        self.blocks
            .iter()
            .flat_map(|m| &self.insts[m.start as usize..(m.start + m.len) as usize])
    }

    /// Finds the first direct call with id `site` in canonical block
    /// order, returning `(block, index, callee, args)`.
    ///
    /// One flat sweep of the raw pool finds the occurrences (a tombstone
    /// is a plain `Op` and cannot match; repeated inlining of one callee
    /// can duplicate a site, so there may be several), then each hit is
    /// mapped to its block and the earliest in block order wins — the
    /// same answer a nested block walk would give, without paying the
    /// per-block iteration overhead on the hot inline path.
    pub fn find_call(&self, site: SiteId) -> Option<(BlockId, usize, FuncId, u8)> {
        let mut best: Option<(usize, usize, FuncId, u8)> = None;
        for (pos, inst) in self.insts.iter().enumerate() {
            let Inst::Call {
                site: s,
                callee,
                args,
            } = inst
            else {
                continue;
            };
            if *s != site {
                continue;
            }
            let hit = self.blocks.iter().enumerate().find_map(|(bi, m)| {
                let (start, end) = (m.start as usize, (m.start + m.len) as usize);
                (start..end).contains(&pos).then(|| (bi, pos - start))
            });
            if let Some((bi, idx)) = hit {
                if best.is_none_or(|(bb, bidx, _, _)| (bi, idx) < (bb, bidx)) {
                    best = Some((bi, idx, *callee, *args));
                }
            }
        }
        best.map(|(bi, idx, callee, args)| (BlockId::from_raw(bi as u32), idx, callee, args))
    }

    /// Number of static return sites (blocks terminated by `Return`).
    pub fn return_sites(&self) -> usize {
        self.blocks.iter().filter(|m| m.term.is_return()).count()
    }

    /// Total live instruction count (excluding terminators and tombstones).
    pub fn inst_count(&self) -> usize {
        self.blocks.iter().map(|m| m.len as usize).sum()
    }

    /// Raw pool length, counting tombstones (diagnostics/tests).
    pub fn pool_len(&self) -> usize {
        self.insts.len()
    }

    // ---- structural editors ------------------------------------------------

    /// Appends a new block holding `insts` and `term`; returns its id.
    /// The instructions land contiguously at the end of the pool.
    pub fn append_block(&mut self, insts: Vec<Inst>, term: Terminator) -> BlockId {
        self.invalidate();
        let id = BlockId::from_raw(self.blocks.len() as u32);
        let start = self.insts.len() as u32;
        let len = insts.len() as u32;
        self.insts.extend(insts);
        self.blocks.push(BlockMeta { start, len, term });
        id
    }

    /// Splits block `bid` before instruction index `at`: `bid` keeps
    /// `[0, at)` and is re-terminated with `first_term`; a **new block**
    /// (the returned id, always `num_blocks()` before the call) takes the
    /// rest and `bid`'s old terminator. With `drop_split_inst` the
    /// instruction *at* `at` is deleted (tombstoned) instead of moving to
    /// the new block — how a call instruction vanishes when its site is
    /// inlined or promoted.
    ///
    /// Pure range arithmetic: no instruction is copied or moved.
    ///
    /// # Panics
    /// Panics if `bid` is out of range or `at` (+1 when dropping) exceeds
    /// the block's length.
    pub fn split_block(
        &mut self,
        bid: BlockId,
        at: usize,
        drop_split_inst: bool,
        first_term: Terminator,
    ) -> BlockId {
        self.invalidate();
        let skip = usize::from(drop_split_inst);
        let m = &mut self.blocks[bid.index()];
        assert!(at + skip <= m.len as usize, "split point outside block");
        let tail_start = m.start + (at + skip) as u32;
        let tail_len = m.len - (at + skip) as u32;
        m.len = at as u32;
        let old_term = std::mem::replace(&mut m.term, first_term);
        if drop_split_inst {
            self.insts[(tail_start - 1) as usize] = TOMBSTONE;
        }
        let id = BlockId::from_raw(self.blocks.len() as u32);
        self.blocks.push(BlockMeta {
            start: tail_start,
            len: tail_len,
            term: old_term,
        });
        id
    }

    /// Splices a copy of `donor`'s body into this function: every donor
    /// block is appended (instructions land in one contiguous pool run),
    /// successor ids are offset, and donor `Return`s become jumps to
    /// `ret_to`. Returns the id of the copied entry block.
    ///
    /// This is the inliner's mechanical core: one `extend_from_slice` per
    /// donor block plus block-table bookkeeping.
    pub fn splice_body(&mut self, donor: &Function, ret_to: BlockId) -> BlockId {
        self.invalidate();
        let offset = self.blocks.len() as u32;
        self.insts.reserve(donor.inst_count());
        self.blocks.reserve(donor.num_blocks());
        for m in &donor.blocks {
            let start = self.insts.len() as u32;
            self.insts
                .extend_from_slice(&donor.insts[m.start as usize..(m.start + m.len) as usize]);
            let term = if m.term.is_return() {
                Terminator::Jump { target: ret_to }
            } else {
                let mut t = m.term.clone();
                t.map_successors(|s| BlockId::from_raw(s.index() as u32 + offset));
                t
            };
            self.blocks.push(BlockMeta {
                start,
                len: m.len,
                term,
            });
        }
        BlockId::from_raw(offset)
    }

    /// Inserts `inst` at position `idx` of block `bid`, repacking the pools
    /// (O(body); for occasional surgical edits — fault injection, hardening
    /// instrumentation — not hot paths).
    ///
    /// # Panics
    /// Panics if `bid` is out of range or `idx > len`.
    pub fn insert_inst(&mut self, bid: BlockId, idx: usize, inst: Inst) {
        let mut blocks = self.to_blocks();
        blocks[bid.index()].insts.insert(idx, inst);
        self.set_blocks(blocks);
    }

    /// Removes and returns the instruction at position `idx` of block `bid`,
    /// repacking the pools (same cost note as
    /// [`insert_inst`](Function::insert_inst)).
    ///
    /// # Panics
    /// Panics if `bid` or `idx` is out of range.
    pub fn remove_inst(&mut self, bid: BlockId, idx: usize) -> Inst {
        let mut blocks = self.to_blocks();
        let inst = blocks[bid.index()].insts.remove(idx);
        self.set_blocks(blocks);
        inst
    }

    /// Materializes every block into the owned edit representation.
    pub fn to_blocks(&self) -> Vec<Block> {
        self.iter_blocks().map(|(_, b)| b.to_block()).collect()
    }

    /// Replaces the whole body, re-packing `blocks` into fresh, contiguous,
    /// tombstone-free pools.
    pub fn set_blocks(&mut self, blocks: Vec<Block>) {
        self.invalidate();
        self.insts.clear();
        self.blocks.clear();
        self.insts
            .reserve(blocks.iter().map(|b| b.insts.len()).sum());
        self.blocks.reserve(blocks.len());
        for b in blocks {
            let start = self.insts.len() as u32;
            let len = b.insts.len() as u32;
            self.insts.extend(b.insts);
            self.blocks.push(BlockMeta {
                start,
                len,
                term: b.term,
            });
        }
    }
}

/// Canonical equality: block order, ignoring tombstone layout.
impl PartialEq for Function {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.id == other.id
            && self.args == other.args
            && self.attrs == other.attrs
            && self.frame_bytes == other.frame_bytes
            && self.blocks.len() == other.blocks.len()
            && self
                .iter_blocks()
                .zip(other.iter_blocks())
                .all(|((_, a), (_, b))| a.insts() == b.insts() && a.term() == b.term())
    }
}

impl Eq for Function {}

/// The wire form: owned blocks, exactly the pre-pool field shape, so
/// serialized modules are canonical (no tombstones) and stable.
#[derive(Serialize, Deserialize)]
struct FunctionWire {
    name: Symbol,
    id: FuncId,
    args: u8,
    blocks: Vec<Block>,
    attrs: FnAttrs,
    frame_bytes: u32,
}

impl Serialize for Function {
    fn to_value(&self) -> serde::Value {
        FunctionWire {
            name: self.name,
            id: self.id,
            args: self.args,
            blocks: self.to_blocks(),
            attrs: self.attrs,
            frame_bytes: self.frame_bytes,
        }
        .to_value()
    }
}

impl Deserialize for Function {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let w = FunctionWire::from_value(v)?;
        let mut f = Function {
            name: w.name,
            id: w.id,
            args: w.args,
            attrs: w.attrs,
            frame_bytes: w.frame_bytes,
            insts: Vec::new(),
            blocks: Vec::new(),
            verified_ok: AtomicU32::new(0),
            cached_bytes: AtomicU64::new(u64::MAX),
        };
        f.set_blocks(w.blocks);
        Ok(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{OpKind, Terminator};

    fn two_block_function() -> Function {
        let b0 = Block::new(
            vec![Inst::Op(OpKind::Alu)],
            Terminator::Jump {
                target: BlockId::from_raw(1),
            },
        );
        let b1 = Block::new(
            vec![Inst::Call {
                site: SiteId::from_raw(1),
                callee: FuncId::from_raw(0),
                args: 0,
            }],
            Terminator::Return,
        );
        Function::new("f".into(), 0, vec![b0, b1], FnAttrs::default(), 64)
    }

    #[test]
    fn block_call_sites_are_listed() {
        let f = two_block_function();
        let sites: Vec<_> = f.block(BlockId::from_raw(1)).call_sites().collect();
        assert_eq!(sites, vec![SiteId::from_raw(1)]);
    }

    #[test]
    fn return_site_count() {
        let f = two_block_function();
        assert_eq!(f.return_sites(), 1);
        assert_eq!(f.inst_count(), 2);
    }

    #[test]
    fn attrs_default_to_all_false() {
        let a = FnAttrs::default();
        assert!(!a.noinline && !a.optnone && !a.inline_asm && !a.boot_only);
    }

    #[test]
    fn pools_pack_blocks_contiguously() {
        let f = two_block_function();
        assert_eq!(f.pool_len(), 2, "no tombstones after a fresh pack");
        assert_eq!(f.num_blocks(), 2);
        assert_eq!(f.block_insts(BlockId::from_raw(0)).len(), 1);
        let all: Vec<_> = f.iter_insts().collect();
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn split_block_is_pure_range_arithmetic() {
        let blocks = vec![Block::new(
            vec![
                Inst::Op(OpKind::Alu),
                Inst::Call {
                    site: SiteId::from_raw(9),
                    callee: FuncId::from_raw(0),
                    args: 0,
                },
                Inst::Op(OpKind::Load),
            ],
            Terminator::Return,
        )];
        let mut f = Function::new("s".into(), 0, blocks, FnAttrs::default(), 64);
        let pool_before = f.pool_len();
        let cont = f.split_block(
            BlockId::ENTRY,
            1,
            true,
            Terminator::Jump {
                target: BlockId::from_raw(1),
            },
        );
        assert_eq!(cont, BlockId::from_raw(1));
        assert_eq!(f.pool_len(), pool_before, "no instruction copied");
        assert_eq!(f.block_insts(BlockId::ENTRY), &[Inst::Op(OpKind::Alu)]);
        assert_eq!(f.block_insts(cont), &[Inst::Op(OpKind::Load)]);
        assert_eq!(f.inst_count(), 2, "the dropped call is dead");
        assert!(f.term(cont).is_return());
        // The tombstone is invisible to canonical equality.
        let repacked = {
            let mut g = f.clone();
            g.set_blocks(g.to_blocks());
            g
        };
        assert_eq!(f, repacked);
        assert!(repacked.pool_len() < f.pool_len());
    }

    #[test]
    fn splice_body_redirects_returns() {
        let donor = two_block_function();
        let mut f = Function::new(
            "host".into(),
            0,
            vec![Block::new(vec![], Terminator::Return)],
            FnAttrs::default(),
            64,
        );
        let entry = f.splice_body(&donor, BlockId::ENTRY);
        assert_eq!(entry, BlockId::from_raw(1));
        assert_eq!(f.num_blocks(), 3);
        // Donor's internal jump offset by 1; its return now jumps to bb0.
        assert_eq!(
            f.term(BlockId::from_raw(1)),
            &Terminator::Jump {
                target: BlockId::from_raw(2)
            }
        );
        assert_eq!(
            f.term(BlockId::from_raw(2)),
            &Terminator::Jump {
                target: BlockId::ENTRY
            }
        );
    }

    #[test]
    fn insert_and_remove_repack() {
        let mut f = two_block_function();
        f.insert_inst(BlockId::ENTRY, 0, Inst::Op(OpKind::Fence));
        assert_eq!(f.block_insts(BlockId::ENTRY)[0], Inst::Op(OpKind::Fence));
        assert_eq!(f.inst_count(), 3);
        let removed = f.remove_inst(BlockId::ENTRY, 0);
        assert_eq!(removed, Inst::Op(OpKind::Fence));
        assert_eq!(f, two_block_function());
    }
}
