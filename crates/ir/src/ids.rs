//! Typed identifiers for IR entities.
//!
//! Everything the IR refers to by identity is a `u32`-sized newtype:
//! [`FuncId`] and [`BlockId`] are dense indices into the module's function
//! list and a function's block pool respectively, [`Symbol`] is an index
//! into the process-wide string interner, and [`SiteId`] is the stable
//! profile identity of a call site. Keeping identifiers word-sized (instead
//! of `String` keys or boxed nodes) is what lets the pass pipeline run as
//! linear scans over contiguous pools — see `docs/IR.md`.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::sync::{OnceLock, RwLock};

/// Identifies a function within a [`Module`](crate::Module).
///
/// Function ids are dense indices assigned in insertion order, which doubles
/// as the function's position in the module's linear code layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FuncId(u32);

impl FuncId {
    /// Creates a function id from a raw index.
    pub fn from_raw(raw: u32) -> Self {
        FuncId(raw)
    }

    /// Returns the raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@f{}", self.0)
    }
}

/// Identifies a basic block within a [`Function`](crate::Function).
///
/// Block ids are local to their function; the entry block is always id 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BlockId(u32);

impl BlockId {
    /// The entry block of every function.
    pub const ENTRY: BlockId = BlockId(0);

    /// Creates a block id from a raw index.
    pub fn from_raw(raw: u32) -> Self {
        BlockId(raw)
    }

    /// Returns the raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// Stable identity of a call site.
///
/// A `SiteId` names the *original* call site as it existed when the program
/// was profiled. Transformations that duplicate code (inlining) clone
/// instructions *including* their `SiteId`, so a profile keyed by site keeps
/// applying to every copy — this is the IR-level analogue of the paper's
/// profile lifting (§7), which maps binary-level edge counts back to IR call
/// sites across code duplication.
///
/// Transformations that *create* call sites (indirect call promotion) draw a
/// fresh id from [`Module::fresh_site`](crate::Module::fresh_site) and record
/// an estimated weight for it in the lifted profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SiteId(u64);

impl SiteId {
    /// Creates a site id from a raw value.
    pub fn from_raw(raw: u64) -> Self {
        SiteId(raw)
    }

    /// Returns the raw value.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "site{}", self.0)
    }
}

/// An interned string: the name of a function (or any other identifier-like
/// string the IR wants to compare by identity).
///
/// Symbols are indices into a process-wide, append-only string table.
/// Interning the same text always yields the same `Symbol`, so equality and
/// hashing are single `u32` comparisons and cloning a [`Function`] no longer
/// copies its name. The backing storage is leaked (`&'static str`), which is
/// bounded by the number of *distinct* names a process ever creates.
///
/// [`Function`]: crate::Function
///
/// Two deliberate omissions:
///
/// * **No `Ord`.** Symbol values are assigned in interning order, which can
///   differ between runs (or thread interleavings); ordering by symbol would
///   be nondeterministic. Sort by [`Symbol::as_str`] where an order matters.
/// * **Serde round-trips through the text**, never the raw index, so
///   serialized modules are stable across processes.
///
/// ```
/// use pibe_ir::Symbol;
/// let a = Symbol::intern("sys_read");
/// let b = Symbol::intern("sys_read");
/// assert_eq!(a, b);
/// assert_eq!(a.as_str(), "sys_read");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Symbol(u32);

/// The process-wide interner: text → id plus the id → text table.
struct Interner {
    map: HashMap<&'static str, u32>,
    strings: Vec<&'static str>,
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        RwLock::new(Interner {
            map: HashMap::new(),
            strings: Vec::new(),
        })
    })
}

impl Symbol {
    /// Interns `text`, returning its canonical symbol. Idempotent: the same
    /// text always maps to the same symbol for the life of the process.
    pub fn intern(text: &str) -> Symbol {
        let lock = interner();
        // Fast path: already interned (read lock only).
        if let Some(&i) = lock.read().expect("interner poisoned").map.get(text) {
            return Symbol(i);
        }
        let mut w = lock.write().expect("interner poisoned");
        // Re-check: another thread may have interned it between the locks.
        if let Some(&i) = w.map.get(text) {
            return Symbol(i);
        }
        let leaked: &'static str = Box::leak(text.to_owned().into_boxed_str());
        let i = u32::try_from(w.strings.len()).expect("interner overflow");
        w.strings.push(leaked);
        w.map.insert(leaked, i);
        Symbol(i)
    }

    /// Looks `text` up without interning it. `None` means no function (or
    /// other symbol user) ever carried this name.
    pub fn lookup(text: &str) -> Option<Symbol> {
        interner()
            .read()
            .expect("interner poisoned")
            .map
            .get(text)
            .copied()
            .map(Symbol)
    }

    /// The interned text.
    pub fn as_str(self) -> &'static str {
        interner().read().expect("interner poisoned").strings[self.0 as usize]
    }

    /// The raw table index — diagnostics only. Indices are process-local;
    /// never persist or compare them across processes.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl Serialize for Symbol {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.as_str().to_string())
    }
}

impl Deserialize for Symbol {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        match v {
            serde::Value::Str(s) => Ok(Symbol::intern(s)),
            _ => Err(serde::DeError::expected("string", "Symbol")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn func_id_roundtrip() {
        let id = FuncId::from_raw(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id.to_string(), "@f42");
    }

    #[test]
    fn block_entry_is_zero() {
        assert_eq!(BlockId::ENTRY.index(), 0);
        assert_eq!(BlockId::from_raw(7).to_string(), "bb7");
    }

    #[test]
    fn site_id_ordering_follows_raw() {
        assert!(SiteId::from_raw(1) < SiteId::from_raw(2));
        assert_eq!(SiteId::from_raw(9).raw(), 9);
    }

    #[test]
    fn symbols_canonicalize_text() {
        let a = Symbol::intern("interner_test_alpha");
        let b = Symbol::intern("interner_test_alpha");
        let c = Symbol::intern("interner_test_beta");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.as_str(), "interner_test_alpha");
        assert_eq!(Symbol::lookup("interner_test_alpha"), Some(a));
        assert_eq!(Symbol::lookup("interner_test_never_interned"), None);
        assert_eq!(a.to_string(), "interner_test_alpha");
    }

    #[test]
    fn symbols_serialize_as_text_not_index() {
        let s = Symbol::intern("interner_serde_roundtrip");
        let json = serde_json::to_string(&s).unwrap();
        assert_eq!(json, "\"interner_serde_roundtrip\"");
        let back: Symbol = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn ids_serialize_as_plain_numbers() {
        let json = serde_json::to_string(&FuncId::from_raw(3)).unwrap();
        assert_eq!(json, "3");
        let back: FuncId = serde_json::from_str(&json).unwrap();
        assert_eq!(back, FuncId::from_raw(3));
    }
}
