//! Typed identifiers for IR entities.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies a function within a [`Module`](crate::Module).
///
/// Function ids are dense indices assigned in insertion order, which doubles
/// as the function's position in the module's linear code layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FuncId(u32);

impl FuncId {
    /// Creates a function id from a raw index.
    pub fn from_raw(raw: u32) -> Self {
        FuncId(raw)
    }

    /// Returns the raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@f{}", self.0)
    }
}

/// Identifies a basic block within a [`Function`](crate::Function).
///
/// Block ids are local to their function; the entry block is always id 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BlockId(u32);

impl BlockId {
    /// The entry block of every function.
    pub const ENTRY: BlockId = BlockId(0);

    /// Creates a block id from a raw index.
    pub fn from_raw(raw: u32) -> Self {
        BlockId(raw)
    }

    /// Returns the raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// Stable identity of a call site.
///
/// A `SiteId` names the *original* call site as it existed when the program
/// was profiled. Transformations that duplicate code (inlining) clone
/// instructions *including* their `SiteId`, so a profile keyed by site keeps
/// applying to every copy — this is the IR-level analogue of the paper's
/// profile lifting (§7), which maps binary-level edge counts back to IR call
/// sites across code duplication.
///
/// Transformations that *create* call sites (indirect call promotion) draw a
/// fresh id from [`Module::fresh_site`](crate::Module::fresh_site) and record
/// an estimated weight for it in the lifted profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SiteId(u64);

impl SiteId {
    /// Creates a site id from a raw value.
    pub fn from_raw(raw: u64) -> Self {
        SiteId(raw)
    }

    /// Returns the raw value.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "site{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn func_id_roundtrip() {
        let id = FuncId::from_raw(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id.to_string(), "@f42");
    }

    #[test]
    fn block_entry_is_zero() {
        assert_eq!(BlockId::ENTRY.index(), 0);
        assert_eq!(BlockId::from_raw(7).to_string(), "bb7");
    }

    #[test]
    fn site_id_ordering_follows_raw() {
        assert!(SiteId::from_raw(1) < SiteId::from_raw(2));
        assert_eq!(SiteId::from_raw(9).raw(), 9);
    }

    #[test]
    fn ids_serialize_as_plain_numbers() {
        let json = serde_json::to_string(&FuncId::from_raw(3)).unwrap();
        assert_eq!(json, "3");
        let back: FuncId = serde_json::from_str(&json).unwrap();
        assert_eq!(back, FuncId::from_raw(3));
    }
}
