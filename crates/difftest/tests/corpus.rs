//! Corpus replay: every fixture under `tests/corpus/` must pass the oracle.
//!
//! Fixtures are minimized reproducers of once-failing (or otherwise
//! interesting) cases; a red run here means a pipeline stage regressed on a
//! case that has bitten before. Regenerate the corpus with
//!
//! ```text
//! PIBE_DIFFTEST_EMIT_CORPUS=1 cargo test -p pibe-difftest --test corpus
//! ```

use pibe::{SemanticCorruption, Stage};
use pibe_difftest::{fixture, gen_case, run_oracle, shrink, GenConfig, Sabotage};
use std::fs;
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus")
}

#[test]
fn every_corpus_fixture_replays_green() {
    let dir = corpus_dir();
    let mut checked = 0usize;
    let mut entries: Vec<_> = fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("missing corpus dir {}: {e}", dir.display()))
        .map(|e| e.expect("readable corpus dir").path())
        .filter(|p| p.extension().is_some_and(|x| x == "pibecase"))
        .collect();
    entries.sort();
    for path in entries {
        let text = fs::read_to_string(&path).expect("readable fixture");
        let case = fixture::from_text(&text)
            .unwrap_or_else(|e| panic!("{} is malformed: {e}", path.display()));
        run_oracle(&case, None).unwrap_or_else(|d| panic!("{} regressed: {d}", path.display()));
        checked += 1;
    }
    assert!(
        checked >= 3,
        "corpus unexpectedly small: {checked} fixtures"
    );
}

/// Rewrites the committed corpus. Gated behind an environment variable so a
/// plain test run never touches the tree.
#[test]
fn regenerate_corpus_when_asked() {
    if std::env::var("PIBE_DIFFTEST_EMIT_CORPUS").is_err() {
        return;
    }
    let dir = corpus_dir();
    fs::create_dir_all(&dir).expect("create corpus dir");
    let cfg = GenConfig::default();

    // 1. The minimized reproducer of the chaos acceptance test: the first
    //    seed that trips over swapped branch arms at the inline stage.
    const SABOTAGE: Sabotage = (Stage::Inline, SemanticCorruption::SwapBranchArms, 7);
    let seed = (0..200)
        .find(|&s| run_oracle(&gen_case(s, &cfg), Some(SABOTAGE)).is_err())
        .expect("a seed in 0..200 trips the sabotage");
    let (small, _) = shrink(&gen_case(seed, &cfg), Some(SABOTAGE));
    run_oracle(&small, None).expect("minimized reproducer replays green");
    let note = format!(
        "minimized from seed {seed}: swap-branch-arms injected after the inline stage\n\
         caught as a core-trace divergence; replays green without the sabotage"
    );
    fs::write(
        dir.join("shrunk-swap-branch-arms.pibecase"),
        fixture::to_text(&small, &note),
    )
    .expect("write fixture");

    // 2. Representative rich cases straight from the generator: recursion +
    //    loops, switches, and an empty target distribution respectively.
    for (seed, tag) in [(5u64, "rich"), (17, "switchy"), (42, "starved")] {
        let case = gen_case(seed, &cfg);
        run_oracle(&case, None).expect("corpus seeds are healthy");
        let note = format!("generated from seed {seed} ({tag}); all stages trace-equivalent");
        fs::write(
            dir.join(format!("seed-{seed}-{tag}.pibecase")),
            fixture::to_text(&case, &note),
        )
        .expect("write fixture");
    }
}
