//! End-to-end determinism and the chaos acceptance test: a deliberately
//! broken pass must be caught by the oracle and shrink to a tiny fixture.

use pibe::{SemanticCorruption, Stage};
use pibe_difftest::{
    fixture, gen_case, run_oracle, run_trace, shrink, Divergence, GenConfig, Sabotage,
};

#[test]
fn identical_seeds_give_identical_modules_traces_and_fixtures() {
    let cfg = GenConfig::default();
    for seed in [0u64, 13, 444, 9999] {
        let a = gen_case(seed, &cfg);
        let b = gen_case(seed, &cfg);
        assert_eq!(a.module.to_string(), b.module.to_string());
        assert_eq!(
            run_trace(&a, &a.module, a.entry),
            run_trace(&b, &b.module, b.entry)
        );
        assert_eq!(fixture::to_text(&a, ""), fixture::to_text(&b, ""));
    }
}

const SABOTAGE: Sabotage = (Stage::Inline, SemanticCorruption::SwapBranchArms, 7);

/// Finds the first seed whose generated case both exercises the sabotage and
/// diverges under it. Deterministic, so the whole test is.
fn first_caught_seed() -> u64 {
    let cfg = GenConfig::default();
    (0..200)
        .find(|&seed| run_oracle(&gen_case(seed, &cfg), Some(SABOTAGE)).is_err())
        .expect("some seed in 0..200 must trip over swapped branch arms")
}

#[test]
fn a_sabotaged_pass_is_caught_as_a_trace_divergence_not_a_build_error() {
    let seed = first_caught_seed();
    let case = gen_case(seed, &GenConfig::default());
    match run_oracle(&case, Some(SABOTAGE)) {
        Err(Divergence::Trace { stage, .. }) => {
            // The corruption lands on the inline stage's output; the first
            // stage that can observe it is exactly that one.
            assert_eq!(
                stage,
                Stage::Inline,
                "divergence must surface at the sabotaged stage"
            );
        }
        other => panic!("expected a trace divergence, got {other:?}"),
    }
    // The same module passes clean: the corruption, not the case, is at
    // fault.
    run_oracle(&case, None).expect("the case itself is healthy");
}

#[test]
fn the_shrinker_minimizes_the_caught_failure_to_a_replayable_fixture() {
    let seed = first_caught_seed();
    let cfg = GenConfig::default();
    let case = gen_case(seed, &cfg);

    let (small, stats) = shrink(&case, Some(SABOTAGE));
    assert!(stats.accepted > 0, "shrinking must make progress");
    assert!(
        small.module.len() <= 3,
        "minimized case still has {} functions:\n{}",
        small.module.len(),
        small.module
    );
    assert!(small.module.len() <= case.module.len());

    // Still fails under sabotage, still passes clean: a true minimal
    // reproducer for the broken pass.
    assert!(run_oracle(&small, Some(SABOTAGE)).is_err());
    run_oracle(&small, None).expect("minimized case replays green without the sabotage");

    // Shrinking is deterministic end to end.
    let (small2, _) = shrink(&case, Some(SABOTAGE));
    assert_eq!(
        fixture::to_text(&small, ""),
        fixture::to_text(&small2, ""),
        "identical inputs must minimize to identical fixtures"
    );

    // And the fixture round-trips through the corpus text format.
    let text = fixture::to_text(&small, "minimized sabotage reproducer");
    let back = fixture::from_text(&text).expect("fixture parses");
    assert!(run_oracle(&back, Some(SABOTAGE)).is_err());
    run_oracle(&back, None).expect("parsed fixture replays green");
}
