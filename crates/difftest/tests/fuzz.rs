//! The differential fuzzer: run the oracle over a window of seeds.
//!
//! The window is `[PIBE_DIFFTEST_BASE, PIBE_DIFFTEST_BASE +
//! PIBE_DIFFTEST_SEEDS)`, defaulting to seeds 0..500. CI runs the default
//! window; a soak run just sets a bigger `PIBE_DIFFTEST_SEEDS` (see
//! EXPERIMENTS.md, "Running the difftest fuzzer").

use pibe_difftest::{fixture, gen_case, run_oracle, GenConfig};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[test]
fn every_pipeline_stage_is_trace_equivalent_over_the_seed_window() {
    let base = env_u64("PIBE_DIFFTEST_BASE", 0);
    let count = env_u64("PIBE_DIFFTEST_SEEDS", 500);
    let cfg = GenConfig::default();
    let mut events = 0usize;
    for seed in base..base + count {
        let case = gen_case(seed, &cfg);
        match run_oracle(&case, None) {
            Ok(report) => events += report.events,
            Err(d) => panic!(
                "seed {seed} diverged: {d}\n\nreplayable fixture:\n{}",
                fixture::to_text(&case, &format!("diverging seed {seed}: {d}"))
            ),
        }
    }
    assert!(
        events > count as usize,
        "the window produced suspiciously few observable events"
    );
}
