//! The differential fuzzer: run the oracle over a window of seeds.
//!
//! The window is `[PIBE_DIFFTEST_BASE, PIBE_DIFFTEST_BASE +
//! PIBE_DIFFTEST_SEEDS)`, defaulting to seeds 0..500. CI runs the default
//! window; a soak run just sets a bigger `PIBE_DIFFTEST_SEEDS` (see
//! EXPERIMENTS.md, "Running the difftest fuzzer").

use pibe_difftest::{fixture, gen_case, run_oracle, run_oracle_at, GenConfig};
use pibe_harden::Arch;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[test]
fn every_pipeline_stage_is_trace_equivalent_over_the_seed_window() {
    let base = env_u64("PIBE_DIFFTEST_BASE", 0);
    let count = env_u64("PIBE_DIFFTEST_SEEDS", 500);
    let cfg = GenConfig::default();
    let mut events = 0usize;
    for seed in base..base + count {
        let case = gen_case(seed, &cfg);
        match run_oracle(&case, None) {
            Ok(report) => events += report.events,
            Err(d) => panic!(
                "seed {seed} diverged: {d}\n\nreplayable fixture:\n{}",
                fixture::to_text(&case, &format!("diverging seed {seed}: {d}"))
            ),
        }
    }
    assert!(
        events > count as usize,
        "the window produced suspiciously few observable events"
    );
}

/// The same oracle under every non-default defense backend, over a window
/// an order of magnitude smaller than the x86 one (the transform is the
/// identity for hardware CFI, so the stages under test are ICP, inlining,
/// and DCE interacting with the backend-keyed pipeline).
#[test]
fn every_backend_is_trace_equivalent_over_the_seed_window() {
    let base = env_u64("PIBE_DIFFTEST_BASE", 0);
    let count = env_u64("PIBE_DIFFTEST_SEEDS", 500).div_ceil(10).max(1);
    let cfg = GenConfig::default();
    for arch in [Arch::Arm64, Arch::Riscv64, Arch::Riscv64Nop] {
        let mut events = 0usize;
        for seed in base..base + count {
            let case = gen_case(seed, &cfg);
            match run_oracle_at(&case, None, arch) {
                Ok(report) => events += report.events,
                Err(d) => panic!(
                    "seed {seed} diverged on {}: {d}\n\nreplayable fixture:\n{}",
                    arch.name(),
                    fixture::to_text(
                        &case,
                        &format!("diverging seed {seed} on {}: {d}", arch.name())
                    )
                ),
            }
        }
        assert!(events > 0, "{} window observed no events", arch.name());
    }
}
