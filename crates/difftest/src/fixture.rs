//! Replayable fixture files for the corpus under `tests/corpus/`.
//!
//! A fixture is a small text file: comment lines, a handful of
//! `key: value` headers, then the module in the workspace's textual IR
//! (exactly what `Module`'s `Display` prints and
//! [`parse_module`](pibe_ir::parse_module()) reads back losslessly):
//!
//! ```text
//! # minimized from seed 42 by swap-branch-arms@inline
//! seed: 42
//! runs: 3
//! entry: f1
//! site: 7 f0*1000 f2*3
//! site: 9
//! module:
//! ; module difftest
//! fn f0(0) frame=64 {  ; @f0
//! ...
//! ```
//!
//! `site` lines carry the resolver spec as `<raw-id> name*weight ...`; a
//! bare `site: <id>` is an empty distribution (the site never resolves).
//! Round-tripping is exact: [`from_text`]`(&`[`to_text`]`(case, _))`
//! reproduces the case bit for bit.

use crate::gen::{Case, ResolverSpec};
use pibe_ir::{parse_module, SiteId};
use std::fmt;

/// A malformed fixture file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FixtureError {
    /// A required header (`seed`, `runs`, `entry`, `module:`) is missing.
    MissingHeader(&'static str),
    /// A header or site line failed to parse.
    BadHeader(String),
    /// The `entry` header names a function the module does not contain.
    UnknownEntry(String),
    /// The module text failed to parse.
    BadModule(String),
}

impl fmt::Display for FixtureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FixtureError::MissingHeader(h) => write!(f, "fixture is missing its `{h}` header"),
            FixtureError::BadHeader(l) => write!(f, "malformed fixture line: {l}"),
            FixtureError::UnknownEntry(e) => write!(f, "entry function `{e}` not in module"),
            FixtureError::BadModule(e) => write!(f, "module text: {e}"),
        }
    }
}

impl std::error::Error for FixtureError {}

/// Serializes a case (plus a human-readable note) into fixture text.
pub fn to_text(case: &Case, note: &str) -> String {
    let mut s = String::new();
    for line in note.lines() {
        s.push_str("# ");
        s.push_str(line);
        s.push('\n');
    }
    s.push_str(&format!("seed: {}\n", case.seed));
    s.push_str(&format!("runs: {}\n", case.runs));
    s.push_str(&format!(
        "entry: {}\n",
        case.module.function(case.entry).name()
    ));
    for (site, targets) in &case.resolver.entries {
        s.push_str(&format!("site: {}", site.raw()));
        for (name, w) in targets {
            s.push_str(&format!(" {name}*{w}"));
        }
        s.push('\n');
    }
    s.push_str("module:\n");
    s.push_str(&case.module.to_string());
    s
}

/// Parses fixture text back into a case.
pub fn from_text(text: &str) -> Result<Case, FixtureError> {
    let mut seed = None;
    let mut runs = None;
    let mut entry_name: Option<String> = None;
    let mut entries = Vec::new();
    let mut module_text: Option<String> = None;

    let mut lines = text.lines();
    for line in lines.by_ref() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "module:" {
            module_text = Some(lines.collect::<Vec<_>>().join("\n"));
            break;
        }
        let (key, value) = line
            .split_once(':')
            .ok_or_else(|| FixtureError::BadHeader(line.to_string()))?;
        let value = value.trim();
        match key.trim() {
            "seed" => {
                seed = Some(
                    value
                        .parse()
                        .map_err(|_| FixtureError::BadHeader(line.to_string()))?,
                )
            }
            "runs" => {
                runs = Some(
                    value
                        .parse()
                        .map_err(|_| FixtureError::BadHeader(line.to_string()))?,
                )
            }
            "entry" => entry_name = Some(value.to_string()),
            "site" => {
                let mut parts = value.split_whitespace();
                let raw: u64 = parts
                    .next()
                    .and_then(|p| p.parse().ok())
                    .ok_or_else(|| FixtureError::BadHeader(line.to_string()))?;
                let mut targets = Vec::new();
                for part in parts {
                    let (name, w) = part
                        .split_once('*')
                        .ok_or_else(|| FixtureError::BadHeader(line.to_string()))?;
                    let w: u32 = w
                        .parse()
                        .map_err(|_| FixtureError::BadHeader(line.to_string()))?;
                    targets.push((name.to_string(), w));
                }
                entries.push((SiteId::from_raw(raw), targets));
            }
            _ => return Err(FixtureError::BadHeader(line.to_string())),
        }
    }

    let seed = seed.ok_or(FixtureError::MissingHeader("seed"))?;
    let runs = runs.ok_or(FixtureError::MissingHeader("runs"))?;
    let entry_name = entry_name.ok_or(FixtureError::MissingHeader("entry"))?;
    let module_text = module_text.ok_or(FixtureError::MissingHeader("module:"))?;
    let module = parse_module(&module_text).map_err(|e| FixtureError::BadModule(e.to_string()))?;
    let entry = module
        .find_function(&entry_name)
        .ok_or(FixtureError::UnknownEntry(entry_name))?;
    Ok(Case {
        seed,
        runs,
        module,
        entry,
        resolver: ResolverSpec { entries },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{gen_case, GenConfig};

    #[test]
    fn fixtures_round_trip_exactly() {
        let cfg = GenConfig::default();
        for seed in [0u64, 9, 42, 77] {
            let case = gen_case(seed, &cfg);
            let text = to_text(&case, "round-trip test\nsecond note line");
            let back = from_text(&text).expect("fixture parses");
            assert_eq!(back.seed, case.seed);
            assert_eq!(back.runs, case.runs);
            assert_eq!(back.entry, case.entry);
            assert_eq!(back.resolver, case.resolver);
            assert_eq!(back.module.to_string(), case.module.to_string());
            // Idempotent: re-serializing the parse reproduces the text sans
            // notes.
            assert_eq!(to_text(&back, ""), to_text(&case, ""));
        }
    }

    #[test]
    fn missing_headers_are_named() {
        assert_eq!(
            from_text("runs: 1\nentry: f\nmodule:\n").unwrap_err(),
            FixtureError::MissingHeader("seed")
        );
        let e = from_text("seed: 1\nruns: 1\nentry: ghost\nmodule:\n; module m\n").unwrap_err();
        assert!(matches!(e, FixtureError::UnknownEntry(n) if n == "ghost"));
    }
}
