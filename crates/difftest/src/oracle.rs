//! The differential driver: one case, every pipeline stage, first divergence
//! wins.
//!
//! The oracle profiles the baseline module, feeds the profile through the
//! full PIBE pipeline (`lax` budgets, all defenses, DCE on), snapshots every
//! committed stage via the pipeline's [`observe_stages`] hook, replays the
//! *same* seeded workload against each snapshot, and diffs the observable
//! traces under the strongest projection each stage admits (see
//! [`Projection`]). The first mismatching event — or a verifier/pipeline
//! error — is the verdict.
//!
//! [`observe_stages`]: pibe::ProfiledImageBuilder::observe_stages

use crate::gen::Case;
use crate::trace::{project, run_trace, Obs, Projection};
use pibe::{Image, PibeConfig, SemanticCorruption, Stage};
use pibe_harden::{Arch, DefenseSet};
use pibe_ir::Module;
use pibe_sim::{SimConfig, Simulator};
use std::cell::RefCell;
use std::fmt;

/// A deliberately broken pass: the corruption is applied to the named
/// stage's output *before* the transactional verifier and the snapshot, via
/// the pipeline's chaos hook.
pub type Sabotage = (Stage, SemanticCorruption, u64);

/// Why a case failed the oracle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Divergence {
    /// The baseline module, a stage snapshot, or the pipeline itself was
    /// structurally broken (verifier or build error).
    Build(String),
    /// Two traces disagreed.
    Trace {
        /// The stage whose output diverged from the baseline.
        stage: Stage,
        /// The projection under which the traces were compared.
        projection: Projection,
        /// Index of the first mismatching event.
        index: usize,
        /// The baseline event at that index, if any.
        expected: Option<Obs>,
        /// The stage-output event at that index, if any.
        actual: Option<Obs>,
    },
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Divergence::Build(msg) => write!(f, "build error: {msg}"),
            Divergence::Trace {
                stage,
                projection,
                index,
                expected,
                actual,
            } => write!(
                f,
                "trace divergence after {} ({projection:?} projection) at event {index}: \
                 expected {expected:?}, got {actual:?}",
                stage.name()
            ),
        }
    }
}

/// What a passing oracle run observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OracleReport {
    /// The stages that were snapshotted and compared, in pipeline order.
    pub stages: Vec<Stage>,
    /// Number of observable events in the baseline trace.
    pub events: usize,
}

/// The pipeline configuration the oracle exercises: the paper's best
/// optimization configuration, every defense, and DCE — the widest possible
/// stage coverage. The defense backend follows `PIBE_ARCH` so the whole
/// difftest suite runs per-arch in the CI matrix.
pub fn oracle_config() -> PibeConfig {
    oracle_config_for(Arch::from_env())
}

/// [`oracle_config`] pinned to an explicit defense backend, for windows
/// that sweep every arch in one process regardless of the environment.
pub fn oracle_config_for(arch: Arch) -> PibeConfig {
    PibeConfig::builder()
        .lax()
        .defenses(DefenseSet::ALL)
        .dce(true)
        .arch(arch)
        .build()
}

/// Step budget for the profiling runs (mirrors the trace budget).
const PROFILE_MAX_STEPS: u64 = 1_000_000;

/// Profiles the case's workload and merges in resolver *coverage*: every
/// positive-weight target is recorded once, so DCE can never strip a
/// function the resolver might still produce at runtime (exactly like
/// address-taken information protects functions from `--gc-sections`).
///
/// Public so external bit-identity suites can rebuild a fixture's image
/// through exactly the profile the oracle would use.
pub fn profile_case(case: &Case) -> pibe_profile::Profile {
    let cfg = SimConfig {
        collect_profile: true,
        max_steps: PROFILE_MAX_STEPS,
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(
        &case.module,
        case.resolver.bind(&case.module),
        case.seed,
        cfg,
    );
    for _ in 0..case.runs {
        // Errors (e.g. empty target distributions) still leave a usable
        // partial profile behind.
        let _ = sim.call_entry(case.entry);
    }
    let mut profile = sim.take_profile();
    for (site, targets) in &case.resolver.entries {
        for (name, w) in targets {
            if *w > 0 {
                if let Some(f) = case.module.find_function(name) {
                    profile.record_indirect(*site, f);
                }
            }
        }
    }
    profile
}

fn first_mismatch(expected: &[Obs], actual: &[Obs]) -> Option<usize> {
    if expected == actual {
        return None;
    }
    let i = expected
        .iter()
        .zip(actual.iter())
        .position(|(a, b)| a != b)
        .unwrap_or_else(|| expected.len().min(actual.len()));
    Some(i)
}

/// Runs the differential oracle on `case` under the `PIBE_ARCH` backend.
///
/// With `sabotage: None` this must pass for every healthy case — a failure
/// is a real semantics-preservation bug in a pipeline stage. With a sabotage
/// the oracle is expected to *catch* the corruption (the chaos hook produces
/// valid-but-wrong IR that slips past the structural verifier by design).
pub fn run_oracle(case: &Case, sabotage: Option<Sabotage>) -> Result<OracleReport, Divergence> {
    run_oracle_at(case, sabotage, Arch::from_env())
}

/// [`run_oracle`] pinned to an explicit defense backend: the per-arch fuzz
/// window runs every backend from one process.
pub fn run_oracle_at(
    case: &Case,
    sabotage: Option<Sabotage>,
    arch: Arch,
) -> Result<OracleReport, Divergence> {
    case.module
        .verify()
        .map_err(|e| Divergence::Build(format!("baseline module invalid: {e}")))?;

    let profile = profile_case(case);

    let snapshots: RefCell<Vec<(Stage, Module)>> = RefCell::new(Vec::new());
    let observer = |s: pibe::StageSnapshot<'_>| {
        snapshots.borrow_mut().push((s.stage, s.module.clone()));
    };
    let mut builder = Image::builder(&case.module)
        .profile(&profile)
        .config(oracle_config_for(arch))
        .observe_stages(&observer);
    if let Some((stage, fault, seed)) = sabotage {
        builder = builder.inject_semantic_fault(stage, fault, seed);
    }
    builder
        .build()
        .map_err(|e| Divergence::Build(format!("pipeline failed: {e}")))?;

    let entry_name = case.module.function(case.entry).name().to_string();
    let baseline = run_trace(case, &case.module, case.entry);

    let snapshots = snapshots.into_inner();
    let mut stages = Vec::with_capacity(snapshots.len());
    for (stage, module) in &snapshots {
        module
            .verify()
            .map_err(|e| Divergence::Build(format!("{} snapshot invalid: {e}", stage.name())))?;
        let entry = module.find_function(&entry_name).ok_or_else(|| {
            Divergence::Build(format!("{} stripped entry {entry_name}", stage.name()))
        })?;
        // Call/return structure survives promotion verbatim; inlining (and
        // everything after) preserves only the core observables.
        let projection = match stage {
            Stage::Icp => Projection::Full,
            _ => Projection::Core,
        };
        let expected = project(&baseline, projection);
        let actual = project(&run_trace(case, module, entry), projection);
        if let Some(index) = first_mismatch(&expected, &actual) {
            return Err(Divergence::Trace {
                stage: *stage,
                projection,
                index,
                expected: expected.get(index).cloned(),
                actual: actual.get(index).cloned(),
            });
        }
        stages.push(*stage);
    }

    Ok(OracleReport {
        stages,
        events: baseline.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{gen_case, GenConfig};

    #[test]
    fn a_healthy_case_passes_every_stage() {
        let case = gen_case(5, &GenConfig::default());
        let report = run_oracle(&case, None).expect("healthy case must pass");
        assert_eq!(
            report.stages,
            vec![Stage::Icp, Stage::Inline, Stage::Dce, Stage::Harden],
            "the oracle must cover every committed stage"
        );
        assert!(report.events > 0);
    }

    #[test]
    fn the_oracle_is_deterministic() {
        let case = gen_case(21, &GenConfig::default());
        assert_eq!(run_oracle(&case, None), run_oracle(&case, None));
    }

    #[test]
    fn an_invalid_baseline_is_rejected_up_front() {
        let mut case = gen_case(5, &GenConfig::default());
        case.module = Module::new("empty");
        let mut b = pibe_ir::FunctionBuilder::new("f0", 0);
        b.op(pibe_ir::OpKind::Alu);
        b.jump(pibe_ir::BlockId::ENTRY); // no return path anywhere
        case.module.add_function(b.build());
        case.entry = pibe_ir::FuncId::from_raw(0);
        case.resolver.entries.clear();
        match run_oracle(&case, None) {
            Err(Divergence::Build(msg)) => assert!(msg.contains("baseline")),
            other => panic!("expected a build divergence, got {other:?}"),
        }
    }
}
