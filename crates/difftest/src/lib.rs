//! # pibe-difftest
//!
//! A differential equivalence oracle for the PIBE pipeline: if indirect
//! call promotion, security inlining, dead-function elimination, or
//! hardening ever *change what a program does*, this crate is the alarm
//! that goes off.
//!
//! The structural verifier in `pibe-ir` catches malformed IR, but a pass
//! can produce perfectly valid IR that computes the wrong thing — swapped
//! branch arms, a retargeted call, a dropped side effect (see
//! [`SemanticCorruption`](pibe::SemanticCorruption) for deliberately
//! injectable examples). Catching those requires comparing *behaviour*, so
//! this crate:
//!
//! 1. **generates** seeded random programs and workloads ([`gen`]) — one
//!    deterministic generator shared with the workspace property tests;
//! 2. **executes** them on the simulator recording every observable event
//!    ([`trace`]): compute ops, branch decisions, switch arms, resolved
//!    indirect targets, call/return structure, and per-invocation outcomes;
//! 3. **diffs** the baseline trace against each committed pipeline stage's
//!    output ([`oracle`]), failing on the first mismatching event;
//! 4. **shrinks** failures to minimal replayable fixtures ([`mod@shrink`],
//!    [`fixture`]) stored in the repository's `tests/corpus/`.
//!
//! Everything is deterministic: same seed, same module, same traces, same
//! minimized fixture — on every machine. The fuzzing entry points live in
//! this crate's `tests/` directory; the seed window is controlled by the
//! `PIBE_DIFFTEST_SEEDS` and `PIBE_DIFFTEST_BASE` environment variables
//! (see EXPERIMENTS.md).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod epoch;
pub mod fixture;
pub mod gen;
pub mod oracle;
pub mod shrink;
pub mod trace;

pub use epoch::{bit_identical, EpochMismatch};
pub use fixture::{from_text, to_text, FixtureError};
pub use gen::{
    build_module, gen_case, generate_plans, plans, Case, FnPlan, GenConfig, ResolverSpec,
};
pub use oracle::{
    oracle_config, oracle_config_for, profile_case, run_oracle, run_oracle_at, Divergence,
    OracleReport, Sabotage,
};
pub use shrink::{shrink, ShrinkStats};
pub use trace::{project, run_trace, Obs, Outcome, Projection};
