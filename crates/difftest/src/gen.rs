//! The seeded random-program generator shared by the difftest fuzzer and the
//! workspace property tests.
//!
//! One generator, two front doors:
//!
//! * [`generate_plans`]`(seed, &cfg)` — the fuzzer's entry point: a seed
//!   deterministically expands to a list of [`FnPlan`]s;
//! * [`plans`]`(cfg)` — a `proptest` [`Strategy`] adapter that
//!   draws one `u64` from the property-test RNG and delegates to the *same*
//!   `generate_plans`. The property tests and the fuzzer therefore exercise
//!   exactly the same program distribution — there is no second generator to
//!   drift.
//!
//! The grammar is deliberately richer than a straight-line DAG: diamonds,
//! chain- and table-lowered switches (including zero-weight arms), guarded
//! backedges and self-recursion (bounded taken probability, so termination is
//! geometric), unreachable blocks (the verifier allows them; DCE-adjacent
//! passes must not choke), `noinline`/`optnone` attribute combinations, and
//! skewed/empty/all-zero-weight indirect target distributions.
//!
//! Termination is by construction, not by luck: direct and indirect call
//! targets are restricted to *earlier* functions (a DAG), the only cycles are
//! self-calls and loop backedges guarded by `Cond::Random` with taken
//! probability ≤ 1/2, so expected iteration counts are tiny and the
//! simulator's step/depth limits are unreachable in practice.

use pibe_ir::{Cond, FnAttrs, FuncId, FunctionBuilder, Module, OpKind, SiteId};
use pibe_sim::MapResolver;
use proptest::strategy::Strategy;
use proptest::test_runner::TestRng;
use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// Tuning knobs for the generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenConfig {
    /// Minimum number of functions per module (≥ 1).
    pub min_funcs: usize,
    /// Maximum number of functions per module.
    pub max_funcs: usize,
    /// Maximum straight-line ops per function body.
    pub max_ops: usize,
    /// How many times the oracle invokes the entry function per trace.
    pub runs: u32,
    /// Enable the rich constructs (switches, loops, recursion, dead blocks,
    /// attributes). With `rich: false` the grammar degenerates to the old
    /// proptest shape: ops, diamonds, direct and indirect calls.
    pub rich: bool,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            min_funcs: 2,
            max_funcs: 10,
            max_ops: 24,
            runs: 6,
            rich: true,
        }
    }
}

/// The per-function blueprint the generator expands into IR.
///
/// Plans are plain data so shrinking and property tests can inspect them;
/// [`build_module`] is the single place plans become IR.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FnPlan {
    /// Straight-line op count, split across the body sections.
    pub ops: usize,
    /// Rotates which [`OpKind`]s the body uses, so traces are op-diverse.
    pub op_salt: u8,
    /// Indices (mod the number of *earlier* functions) to call directly.
    pub direct_calls: Vec<usize>,
    /// Emit one unresolved indirect call site (only lands when at least one
    /// earlier function exists to target).
    pub has_indirect: bool,
    /// Emit a `Load`/`Store` diamond guarded by a `Cond::Random`.
    pub branchy: bool,
    /// Number of switch arms (0 = no switch; arm weights include zeros).
    pub switch_arms: u8,
    /// Lower the switch through a jump table (the hardenable kind).
    pub via_table: bool,
    /// Backedge taken probability in per-mille; 0 = no loop. Capped at 500
    /// so loop trip counts stay geometric with ratio ≤ 1/2.
    pub loop_milli: u16,
    /// Guarded self-call probability in per-mille; 0 = no self-recursion.
    pub recurse_milli: u16,
    /// Append an unreachable block after the return (legal IR; exercises
    /// passes against dead code).
    pub dead_block: bool,
    /// Mark the function `noinline`.
    pub noinline: bool,
    /// Mark the function `optnone`.
    pub optnone: bool,
    /// Stack frame size in bytes.
    pub frame_bytes: u32,
    /// Formal argument count (drives call-cost modelling).
    pub args: u8,
}

fn plan_from_rng(rng: &mut SmallRng, cfg: &GenConfig) -> FnPlan {
    let rich = cfg.rich;
    let pct = |rng: &mut SmallRng| rng.gen_range(0u32..100);
    FnPlan {
        ops: rng.gen_range(1..cfg.max_ops.max(2)),
        op_salt: rng.gen_range(0u8..6),
        direct_calls: {
            let n = rng.gen_range(0usize..3);
            (0..n).map(|_| rng.gen_range(0usize..1000)).collect()
        },
        has_indirect: pct(rng) < 40,
        branchy: pct(rng) < 50,
        switch_arms: if rich && pct(rng) < 30 {
            rng.gen_range(2u8..6)
        } else {
            0
        },
        via_table: pct(rng) < 50,
        loop_milli: if rich && pct(rng) < 25 {
            rng.gen_range(100u16..500)
        } else {
            0
        },
        recurse_milli: if rich && pct(rng) < 20 {
            rng.gen_range(50u16..300)
        } else {
            0
        },
        dead_block: rich && pct(rng) < 20,
        noinline: rich && pct(rng) < 15,
        optnone: rich && pct(rng) < 10,
        frame_bytes: [16, 64, 128, 512][rng.gen_range(0usize..4)],
        args: rng.gen_range(0u8..4),
    }
}

/// Expands `seed` into a deterministic list of function plans.
///
/// Identical `(seed, cfg)` pairs produce identical plans on every platform:
/// the only entropy source is a [`SmallRng`] seeded from `seed`.
pub fn generate_plans(seed: u64, cfg: &GenConfig) -> Vec<FnPlan> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xD1FF_7E57_0000_0001);
    let n = rng.gen_range(cfg.min_funcs.max(1)..=cfg.max_funcs.max(cfg.min_funcs.max(1)));
    (0..n).map(|_| plan_from_rng(&mut rng, cfg)).collect()
}

/// An indirect call site and the index of the function containing it.
///
/// The owner index lets resolver generation restrict targets to *earlier*
/// functions, keeping the dynamic call graph a DAG (plus bounded
/// self-recursion) so generated programs always terminate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndirectSite {
    /// The unresolved indirect call site.
    pub site: SiteId,
    /// Index of the function the site appears in.
    pub owner: usize,
}

/// Expands plans into a module.
///
/// Returns the module, its indirect call sites (with owners), and the entry
/// function (always the last function, so it can reach every other one).
pub fn build_module(plans: &[FnPlan]) -> (Module, Vec<IndirectSite>, FuncId) {
    assert!(!plans.is_empty(), "a module needs at least one function");
    let mut m = Module::new("difftest");
    let mut isites = Vec::new();
    for (i, plan) in plans.iter().enumerate() {
        let self_id = FuncId::from_raw(i as u32);
        let kind = |j: usize| OpKind::ALL[(plan.op_salt as usize + j) % OpKind::ALL.len()];
        let mut b = FunctionBuilder::new(format!("f{i}"), plan.args);
        b.attrs(FnAttrs {
            noinline: plan.noinline,
            optnone: plan.optnone,
            ..FnAttrs::default()
        });
        b.frame_bytes(plan.frame_bytes);

        let head = plan.ops / 2;
        for j in 0..head {
            b.op(kind(j));
        }

        if plan.branchy {
            let then_bb = b.new_block();
            let else_bb = b.new_block();
            let merge = b.new_block();
            b.branch(Cond::Random { ptaken_milli: 400 }, then_bb, else_bb);
            b.switch_to(then_bb);
            b.op(OpKind::Load);
            b.jump(merge);
            b.switch_to(else_bb);
            b.op(OpKind::Store);
            b.jump(merge);
            b.switch_to(merge);
        }

        if plan.switch_arms >= 2 {
            let merge = b.new_block();
            let arms: Vec<_> = (0..plan.switch_arms).map(|_| b.new_block()).collect();
            let default = b.new_block();
            // Arm 0 gets weight 0 on purpose: zero-weight arms are legal and
            // must never be selected.
            let weights: Vec<u16> = (0..arms.len()).map(|k| (k % 3) as u16).collect();
            b.switch(weights, arms.clone(), 1, default, plan.via_table);
            for (k, arm) in arms.iter().enumerate() {
                b.switch_to(*arm);
                b.op(kind(k));
                b.jump(merge);
            }
            b.switch_to(default);
            b.op(OpKind::Cmp);
            b.jump(merge);
            b.switch_to(merge);
        }

        if plan.loop_milli > 0 {
            let body = b.new_block();
            let exit = b.new_block();
            b.jump(body);
            b.switch_to(body);
            b.op(kind(1));
            b.branch(
                Cond::Random {
                    ptaken_milli: plan.loop_milli.min(500),
                },
                body,
                exit,
            );
            b.switch_to(exit);
        }

        if plan.recurse_milli > 0 {
            let rec = b.new_block();
            let cont = b.new_block();
            b.branch(
                Cond::Random {
                    ptaken_milli: plan.recurse_milli.min(500),
                },
                rec,
                cont,
            );
            b.switch_to(rec);
            let site = m.fresh_site();
            b.call(site, self_id, plan.args);
            b.jump(cont);
            b.switch_to(cont);
        }

        if i > 0 {
            for &c in &plan.direct_calls {
                let callee = FuncId::from_raw((c % i) as u32);
                let site = m.fresh_site();
                b.call(site, callee, plan.args);
            }
            if plan.has_indirect {
                let site = m.fresh_site();
                b.call_indirect(site, plan.args);
                isites.push(IndirectSite { site, owner: i });
            }
        }

        for j in head..plan.ops {
            b.op(kind(j));
        }
        b.ret();

        if plan.dead_block {
            let dead = b.new_block();
            b.switch_to(dead);
            b.op(OpKind::Fence);
            b.ret();
        }

        m.add_function(b.build());
    }
    let entry = FuncId::from_raw((plans.len() - 1) as u32);
    (m, isites, entry)
}

/// A portable description of an indirect-call target oracle.
///
/// Targets are named by *function name*, not [`FuncId`]: ids are renumbered
/// by DCE, names survive every pass, so one spec binds cleanly against every
/// stage's output module. Binding silently drops names the module no longer
/// contains — by construction those entries carry zero dynamic weight (a
/// stripped function was never a resolvable target), so dropping them does
/// not perturb the resolver's RNG draws.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResolverSpec {
    /// Per-site weighted target lists. Empty or all-zero-weight lists are
    /// legal and mean the site never resolves (`SimError::UnknownTarget`).
    pub entries: Vec<(SiteId, Vec<(String, u32)>)>,
}

impl ResolverSpec {
    /// Binds the spec against a concrete module, translating names to ids.
    pub fn bind(&self, module: &Module) -> MapResolver {
        let mut r = MapResolver::new();
        for (site, targets) in &self.entries {
            let bound: Vec<(FuncId, u32)> = targets
                .iter()
                .filter_map(|(name, w)| module.find_function(name).map(|f| (f, *w)))
                .collect();
            r.insert(*site, bound);
        }
        r
    }
}

/// A complete, replayable differential test case.
#[derive(Debug, Clone)]
pub struct Case {
    /// The seed the case was generated from (0 for hand-written fixtures).
    pub seed: u64,
    /// How many times the oracle invokes the entry function.
    pub runs: u32,
    /// The baseline module fed to the pipeline.
    pub module: Module,
    /// The entry function.
    pub entry: FuncId,
    /// The indirect-call target oracle.
    pub resolver: ResolverSpec,
}

const SKEW: [u32; 4] = [1000, 40, 3, 1];

/// Expands `seed` into a full test case: module plus resolver spec.
pub fn gen_case(seed: u64, cfg: &GenConfig) -> Case {
    let plans = generate_plans(seed, cfg);
    let (module, isites, entry) = build_module(&plans);
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xD1FF_7E57_0000_0002);
    let mut entries = Vec::new();
    for is in &isites {
        let roll = rng.gen_range(0u32..100);
        let name_of = |idx: usize| format!("f{idx}");
        let targets: Vec<(String, u32)> = if roll < 4 {
            // Empty distribution: the site never resolves.
            Vec::new()
        } else if roll < 8 {
            // All-zero weights: registered but still never resolves.
            vec![(name_of(rng.gen_range(0..is.owner)), 0)]
        } else {
            let k = rng.gen_range(1..=SKEW.len().min(is.owner));
            (0..k)
                .map(|j| (name_of(rng.gen_range(0..is.owner)), SKEW[j]))
                .collect()
        };
        entries.push((is.site, targets));
    }
    Case {
        seed,
        runs: cfg.runs,
        module,
        entry,
        resolver: ResolverSpec { entries },
    }
}

/// A `proptest` strategy producing the generator's plan lists.
///
/// The strategy draws a single `u64` from the property-test RNG and expands
/// it through [`generate_plans`] — the same code path as the fuzzer.
#[derive(Debug, Clone, Copy)]
pub struct PlansStrategy {
    cfg: GenConfig,
}

impl Strategy for PlansStrategy {
    type Value = Vec<FnPlan>;

    fn generate(&self, rng: &mut TestRng) -> Vec<FnPlan> {
        let seed = rng.next_u64();
        generate_plans(seed, &self.cfg)
    }
}

/// The plan-list strategy for property tests (see [`PlansStrategy`]).
pub fn plans(cfg: GenConfig) -> PlansStrategy {
    PlansStrategy { cfg }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_seeds_expand_to_identical_modules() {
        let cfg = GenConfig::default();
        for seed in [0u64, 1, 7, 1234, u64::MAX] {
            let a = gen_case(seed, &cfg);
            let b = gen_case(seed, &cfg);
            assert_eq!(a.module.to_string(), b.module.to_string());
            assert_eq!(a.resolver, b.resolver);
            assert_eq!(a.entry, b.entry);
        }
    }

    #[test]
    fn generated_modules_always_verify() {
        let cfg = GenConfig::default();
        for seed in 0..200 {
            let case = gen_case(seed, &cfg);
            case.module
                .verify()
                .unwrap_or_else(|e| panic!("seed {seed} generated invalid IR: {e}"));
        }
    }

    #[test]
    fn the_rich_grammar_actually_shows_up() {
        let cfg = GenConfig::default();
        let mut switches = 0u32;
        let mut loops = 0u32;
        let mut recursion = 0u32;
        let mut dead = 0u32;
        let mut attrs = 0u32;
        let mut empty_dists = 0u32;
        for seed in 0..100 {
            let plans = generate_plans(seed, &cfg);
            switches += plans.iter().filter(|p| p.switch_arms >= 2).count() as u32;
            loops += plans.iter().filter(|p| p.loop_milli > 0).count() as u32;
            recursion += plans.iter().filter(|p| p.recurse_milli > 0).count() as u32;
            dead += plans.iter().filter(|p| p.dead_block).count() as u32;
            attrs += plans.iter().filter(|p| p.noinline || p.optnone).count() as u32;
            let case = gen_case(seed, &cfg);
            empty_dists += case
                .resolver
                .entries
                .iter()
                .filter(|(_, t)| t.is_empty() || t.iter().all(|(_, w)| *w == 0))
                .count() as u32;
        }
        assert!(switches > 0, "no switches in 100 seeds");
        assert!(loops > 0, "no loops in 100 seeds");
        assert!(recursion > 0, "no self-recursion in 100 seeds");
        assert!(dead > 0, "no dead blocks in 100 seeds");
        assert!(attrs > 0, "no attribute combos in 100 seeds");
        assert!(
            empty_dists > 0,
            "no empty/zero-weight distributions in 100 seeds"
        );
    }

    #[test]
    fn resolver_targets_stay_strictly_earlier_than_their_owner() {
        let cfg = GenConfig::default();
        for seed in 0..100 {
            let plans = generate_plans(seed, &cfg);
            let (module, isites, _) = build_module(&plans);
            let case = gen_case(seed, &cfg);
            for (site, targets) in &case.resolver.entries {
                let owner = isites
                    .iter()
                    .find(|is| is.site == *site)
                    .expect("spec sites come from the module")
                    .owner;
                for (name, _) in targets {
                    let f = module.find_function(name).expect("targets exist");
                    assert!(
                        f.index() < owner,
                        "seed {seed}: {name} not earlier than its caller f{owner}"
                    );
                }
            }
        }
    }

    #[test]
    fn strategy_adapter_draws_through_the_shared_generator() {
        use proptest::test_runner::TestRng;
        let cfg = GenConfig::default();
        let s = plans(cfg);
        let mut rng_a = TestRng::from_seed_u64(99);
        let mut rng_b = TestRng::from_seed_u64(99);
        let a = s.generate(&mut rng_a);
        let b = s.generate(&mut rng_b);
        assert_eq!(a, b, "strategy must be deterministic in the test RNG");
        // And the value really is a generate_plans expansion: replaying the
        // drawn seed reproduces it.
        let mut rng_c = TestRng::from_seed_u64(99);
        let seed = rng_c.next_u64();
        assert_eq!(a, generate_plans(seed, &cfg));
    }
}
