//! Greedy, deterministic minimization of failing cases.
//!
//! The shrinker repeatedly proposes structurally smaller candidates (drop a
//! function, flatten a branch or switch, delete ops or calls, thin the
//! resolver, halve the run count) and keeps a candidate iff it still
//! verifies *and* still fails the oracle the same way the original did
//! (i.e. [`run_oracle`] still returns an error under the same sabotage).
//! Passes iterate to a fixed point; everything is ordered, so identical
//! inputs minimize to identical fixtures.

use crate::gen::Case;
use crate::oracle::{run_oracle, Sabotage};
use pibe_ir::{FuncId, Function, Inst, Module, Terminator};

/// What a shrink run did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShrinkStats {
    /// Fixed-point rounds executed.
    pub rounds: usize,
    /// Candidates proposed.
    pub tried: usize,
    /// Candidates accepted (each strictly smaller than its predecessor).
    pub accepted: usize,
}

/// Hard cap on fixed-point rounds; generated cases converge in a handful.
const MAX_ROUNDS: usize = 32;

/// Rebuilds `case` without function `victim`: calls to it are deleted,
/// later function ids shift down, and the resolver forgets its name.
fn without_function(case: &Case, victim: usize) -> Option<Case> {
    if case.module.len() <= 1 || case.entry.index() == victim {
        return None;
    }
    let victim_name = case
        .module
        .function(FuncId::from_raw(victim as u32))
        .name()
        .to_string();
    let remap = |f: FuncId| -> Option<FuncId> {
        use std::cmp::Ordering::*;
        match f.index().cmp(&victim) {
            Less => Some(f),
            Equal => None,
            Greater => Some(FuncId::from_raw(f.index() as u32 - 1)),
        }
    };
    let mut m = Module::new(case.module.name().to_string());
    for f in case.module.functions() {
        if f.id().index() == victim {
            continue;
        }
        let mut nf = Function::clone(f);
        // Structural edit: materialize owned blocks, filter, repack pools.
        let mut blocks = nf.to_blocks();
        for block in &mut blocks {
            block.insts.retain_mut(|inst| match inst {
                Inst::Call { callee, .. } => match remap(*callee) {
                    Some(c) => {
                        *callee = c;
                        true
                    }
                    None => false,
                },
                _ => true,
            });
        }
        nf.set_blocks(blocks);
        m.add_function(nf);
    }
    let mut resolver = case.resolver.clone();
    for (_, targets) in resolver.entries.iter_mut() {
        targets.retain(|(name, _)| *name != victim_name);
    }
    Some(Case {
        seed: case.seed,
        runs: case.runs,
        module: m,
        entry: remap(case.entry)?,
        resolver,
    })
}

/// All single-edit candidates, smallest-impact passes last. Ordered and
/// exhaustive per round, so shrinking is deterministic.
fn candidates(case: &Case) -> Vec<Case> {
    let mut out = Vec::new();

    // 1. Drop whole functions, highest id first (keeps earlier ids stable).
    for victim in (0..case.module.len()).rev() {
        if let Some(c) = without_function(case, victim) {
            out.push(c);
        }
    }

    // 2. Flatten control flow: branch → jump (either arm), switch → jump to
    //    default.
    for fid in case.module.func_ids() {
        for bi in 0..case.module.function(fid).num_blocks() {
            let bid = pibe_ir::BlockId::from_raw(bi as u32);
            let term = case.module.function(fid).term(bid).clone();
            let replacements: Vec<Terminator> = match &term {
                Terminator::Branch {
                    then_bb, else_bb, ..
                } => vec![
                    Terminator::Jump { target: *then_bb },
                    Terminator::Jump { target: *else_bb },
                ],
                Terminator::Switch { default, .. } => {
                    vec![Terminator::Jump { target: *default }]
                }
                _ => vec![],
            };
            for r in replacements {
                let mut c = case.clone();
                *c.module.function_mut(fid).term_mut(bid) = r;
                out.push(c);
            }
        }
    }

    // 3. Delete instructions: all plain ops in a block at once, then the
    //    block's first call.
    for fid in case.module.func_ids() {
        for bi in 0..case.module.function(fid).num_blocks() {
            let bid = pibe_ir::BlockId::from_raw(bi as u32);
            let block = case.module.function(fid).block(bid);
            if block.insts().iter().any(|i| matches!(i, Inst::Op(_))) {
                let mut c = case.clone();
                let nf = c.module.function_mut(fid);
                let mut blocks = nf.to_blocks();
                blocks[bi].insts.retain(|i| !matches!(i, Inst::Op(_)));
                nf.set_blocks(blocks);
                out.push(c);
            }
            if let Some(pos) = block.insts().iter().position(|i| i.is_call()) {
                let mut c = case.clone();
                c.module.function_mut(fid).remove_inst(bid, pos);
                out.push(c);
            }
        }
    }

    // 4. Thin the resolver: drop a whole site, or keep only its hottest
    //    target.
    for i in 0..case.resolver.entries.len() {
        let mut c = case.clone();
        c.resolver.entries.remove(i);
        out.push(c);
        if case.resolver.entries[i].1.len() > 1 {
            let mut c = case.clone();
            c.resolver.entries[i].1.truncate(1);
            out.push(c);
        }
    }

    // 5. Fewer workload invocations.
    if case.runs > 1 {
        let mut c = case.clone();
        c.runs /= 2;
        out.push(c);
    }

    out
}

fn size_of(case: &Case) -> usize {
    let mut n = case.module.len() * 16 + case.runs as usize;
    for f in case.module.functions() {
        for (_, b) in f.iter_blocks() {
            n += 2 + b.insts().len() * 2;
            n += match b.term() {
                Terminator::Jump { .. } | Terminator::Return => 1,
                Terminator::Branch { .. } => 3,
                Terminator::Switch { cases, .. } => 3 + cases.len(),
            };
        }
    }
    n + case
        .resolver
        .entries
        .iter()
        .map(|(_, t)| 1 + t.len())
        .sum::<usize>()
}

/// Minimizes a failing case.
///
/// # Panics
/// Panics if `case` does not actually fail the oracle under `sabotage` —
/// shrinking a passing case is always a caller bug.
pub fn shrink(case: &Case, sabotage: Option<Sabotage>) -> (Case, ShrinkStats) {
    let still_fails = |c: &Case| run_oracle(c, sabotage).is_err();
    assert!(
        still_fails(case),
        "shrink called on a case the oracle accepts"
    );

    let mut best = case.clone();
    let mut stats = ShrinkStats::default();
    for _ in 0..MAX_ROUNDS {
        stats.rounds += 1;
        let mut progressed = false;
        for cand in candidates(&best) {
            stats.tried += 1;
            if size_of(&cand) >= size_of(&best) {
                continue;
            }
            if cand.module.verify().is_err() {
                continue;
            }
            if still_fails(&cand) {
                best = cand;
                stats.accepted += 1;
                progressed = true;
                break; // restart candidate enumeration on the smaller case
            }
        }
        if !progressed {
            break;
        }
    }
    (best, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{gen_case, GenConfig};

    #[test]
    fn candidates_are_all_strictly_smaller_or_skipped() {
        let case = gen_case(2, &GenConfig::default());
        let base = size_of(&case);
        // Not every candidate is smaller (flattening a branch keeps inst
        // counts), but dropping a function always is.
        let smaller = candidates(&case)
            .into_iter()
            .filter(|c| size_of(c) < base)
            .count();
        assert!(smaller > 0);
    }

    #[test]
    #[should_panic(expected = "oracle accepts")]
    fn shrinking_a_passing_case_panics() {
        let case = gen_case(5, &GenConfig::default());
        let _ = shrink(&case, None);
    }
}
