//! Observable traces and their stage-invariant projections.
//!
//! The simulator's raw [`TraceEvent`] stream names functions by [`FuncId`];
//! DCE renumbers ids, so the oracle compares *observations* — events with
//! function identities resolved to names. Two projections matter:
//!
//! * [`Projection::Full`] keeps `Enter`/`Return` events. It is invariant
//!   from baseline through indirect call promotion (promotion only rewrites
//!   *how* a target is dispatched, never the call/return structure).
//! * [`Projection::Core`] drops `Enter`/`Return`. It is invariant across
//!   *every* pipeline stage: inlining removes call/return pairs by design,
//!   but the compute ops, branch decisions, switch arms, resolved targets,
//!   and the final outcome of each invocation must all survive untouched.

use crate::gen::Case;
use pibe_ir::{FuncId, Module, OpKind};
use pibe_sim::{SimConfig, SimError, Simulator, TraceEvent};

/// One observable event, with function identity resolved to a name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Obs {
    /// A compute op executed.
    Op(OpKind),
    /// Control entered the named function.
    Enter(String),
    /// Control returned out of the named function.
    Return(String),
    /// An indirect-call site resolved to the named target.
    Resolve {
        /// Raw site id (stable across every pass).
        site: u64,
        /// Resolved target, by name.
        target: String,
    },
    /// A `Cond::Random` branch executed with this decision.
    Branch(bool),
    /// A switch dispatched to this arm (`cases.len()` = the default).
    Arm(u32),
    /// One entry invocation finished with this outcome.
    End(Outcome),
}

/// How one invocation of the entry function ended.
///
/// Errors are keyed by the *site* (raw id) that faulted, never by function
/// id: sites are stable across passes, function ids are not.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The invocation ran to completion.
    Ok,
    /// An indirect call executed with no registered target distribution, or
    /// an empty/all-zero-weight one.
    UnknownTarget(u64),
    /// The resolver produced an out-of-range function id.
    BadTarget(u64),
    /// A resolved call or guard ran before its `ResolveTarget`.
    UnresolvedTarget(u64),
    /// The step limit tripped.
    StepLimit,
    /// The call-depth limit tripped.
    StackOverflow,
}

impl From<&SimError> for Outcome {
    fn from(e: &SimError) -> Self {
        match e {
            SimError::UnknownTarget(s) => Outcome::UnknownTarget(s.raw()),
            SimError::BadTarget(s, _) => Outcome::BadTarget(s.raw()),
            SimError::UnresolvedTarget(s) => Outcome::UnresolvedTarget(s.raw()),
            SimError::StepLimit(_) => Outcome::StepLimit,
            SimError::StackOverflow(_) => Outcome::StackOverflow,
        }
    }
}

/// Which events a comparison considers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Projection {
    /// All events, including call/return structure. Invariant baseline →
    /// post-ICP.
    Full,
    /// Everything except `Enter`/`Return`. Invariant across all stages.
    Core,
}

/// Projects a full observation stream.
pub fn project(full: &[Obs], p: Projection) -> Vec<Obs> {
    match p {
        Projection::Full => full.to_vec(),
        Projection::Core => full
            .iter()
            .filter(|o| !matches!(o, Obs::Enter(_) | Obs::Return(_)))
            .cloned()
            .collect(),
    }
}

fn obs_of(ev: TraceEvent, module: &Module) -> Obs {
    let name = |f: FuncId| module.function(f).name().to_string();
    match ev {
        TraceEvent::Op(k) => Obs::Op(k),
        TraceEvent::Enter(f) => Obs::Enter(name(f)),
        TraceEvent::Return(f) => Obs::Return(name(f)),
        TraceEvent::Resolved { site, target } => Obs::Resolve {
            site: site.raw(),
            target: name(target),
        },
        TraceEvent::BranchTaken(t) => Obs::Branch(t),
        TraceEvent::SwitchArm(a) => Obs::Arm(a),
    }
}

/// Step budget per trace. Far beyond anything the generator's geometric
/// loops can reach, but small enough to fail fast on a genuinely broken
/// module. Step *counts* differ across stages (inlining removes executed
/// call instructions), so this limit must never trip on healthy cases —
/// tripping it would truncate stage traces at different points.
const TRACE_MAX_STEPS: u64 = 1_000_000;

/// Runs `case.runs` invocations of `entry` in `module` under `case`'s seed
/// and resolver, returning the full observation stream (one [`Obs::End`] per
/// invocation).
pub fn run_trace(case: &Case, module: &Module, entry: FuncId) -> Vec<Obs> {
    let cfg = SimConfig {
        collect_trace: true,
        max_steps: TRACE_MAX_STEPS,
        ..SimConfig::default()
    };
    let resolver = case.resolver.bind(module);
    let mut sim = Simulator::new(module, resolver, case.seed, cfg);
    let mut out = Vec::new();
    for _ in 0..case.runs {
        let outcome = match sim.call_entry(entry) {
            Ok(_) => Outcome::Ok,
            Err(e) => (&e).into(),
        };
        out.extend(sim.take_trace().into_iter().map(|ev| obs_of(ev, module)));
        out.push(Obs::End(outcome));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{gen_case, GenConfig};

    #[test]
    fn traces_are_deterministic_per_seed() {
        let cfg = GenConfig::default();
        for seed in [0u64, 3, 17] {
            let case = gen_case(seed, &cfg);
            let a = run_trace(&case, &case.module, case.entry);
            let b = run_trace(&case, &case.module, case.entry);
            assert_eq!(a, b);
            assert_eq!(
                a.iter().filter(|o| matches!(o, Obs::End(_))).count(),
                case.runs as usize
            );
        }
    }

    #[test]
    fn core_projection_drops_only_call_structure() {
        let cfg = GenConfig::default();
        let case = gen_case(11, &cfg);
        let full = run_trace(&case, &case.module, case.entry);
        let core = project(&full, Projection::Core);
        assert!(core.len() <= full.len());
        assert!(core
            .iter()
            .all(|o| !matches!(o, Obs::Enter(_) | Obs::Return(_))));
        assert_eq!(project(&full, Projection::Full), full);
    }
}
