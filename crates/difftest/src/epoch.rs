//! The incremental-vs-full bit-identity oracle for the serve loop.
//!
//! The continuous-PGO service maintains its image *incrementally*: no-drift
//! epochs skip the pipeline entirely (decision-surface equality), and
//! drifting epochs rebuild with a warm harden cache. The contract is that
//! none of that machinery is ever observable in the output: at any epoch,
//! the served image must be **bit-identical** to what a from-scratch
//! pipeline run over the same cumulative profile would produce. This
//! module is the judge — it compares the canonical textual rendering of
//! both modules (the same total representation the printer round-trips)
//! and, on mismatch, names the first function whose rendering diverges.

use pibe_ir::Module;
use std::fmt;

/// A bit-identity violation: the incremental image diverged from the
/// from-scratch rebuild.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochMismatch {
    /// Function count of the incremental image.
    pub incremental_functions: usize,
    /// Function count of the from-scratch image.
    pub full_functions: usize,
    /// The first diverging function's name and index, when both modules
    /// have the same function count (`None` when the counts differ —
    /// that *is* the divergence).
    pub first_divergence: Option<(usize, String)>,
}

impl fmt::Display for EpochMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.incremental_functions != self.full_functions {
            write!(
                f,
                "incremental image has {} functions, from-scratch has {}",
                self.incremental_functions, self.full_functions
            )
        } else {
            match &self.first_divergence {
                Some((idx, name)) => write!(
                    f,
                    "images diverge at function #{idx} ({name}): renderings differ"
                ),
                None => write!(f, "module headers or site watermarks diverge"),
            }
        }
    }
}

impl std::error::Error for EpochMismatch {}

/// Checks that `incremental` and `full` are bit-identical under the
/// canonical rendering.
///
/// # Errors
/// Returns an [`EpochMismatch`] locating the first divergence.
pub fn bit_identical(incremental: &Module, full: &Module) -> Result<(), EpochMismatch> {
    if incremental.to_string() == full.to_string() {
        return Ok(());
    }
    let mismatch = if incremental.len() != full.len() {
        EpochMismatch {
            incremental_functions: incremental.len(),
            full_functions: full.len(),
            first_divergence: None,
        }
    } else {
        let first = incremental
            .functions()
            .iter()
            .zip(full.functions())
            .enumerate()
            .find(|(_, (a, b))| format!("{a:?}") != format!("{b:?}"))
            .map(|(i, (a, _))| (i, a.name().to_string()));
        EpochMismatch {
            incremental_functions: incremental.len(),
            full_functions: full.len(),
            first_divergence: first,
        }
    };
    Err(mismatch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pibe_ir::{FunctionBuilder, OpKind};

    fn module(ops: usize) -> Module {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("f", 0);
        for _ in 0..ops {
            b.op(OpKind::Alu);
        }
        b.ret();
        m.add_function(b.build());
        m
    }

    #[test]
    fn identical_modules_pass() {
        assert_eq!(bit_identical(&module(3), &module(3)), Ok(()));
    }

    #[test]
    fn divergence_names_the_function() {
        let err = bit_identical(&module(3), &module(4)).unwrap_err();
        assert_eq!(err.first_divergence, Some((0, "f".to_string())));
        assert!(err.to_string().contains("function #0 (f)"));
    }

    #[test]
    fn function_count_mismatch_is_reported_as_such() {
        let mut bigger = module(3);
        let mut b = FunctionBuilder::new("g", 0);
        b.ret();
        bigger.add_function(b.build());
        let err = bit_identical(&module(3), &bigger).unwrap_err();
        assert_eq!((err.incremental_functions, err.full_functions), (1, 2));
        assert!(err.first_divergence.is_none());
        assert!(err.to_string().contains("1 functions"));
    }
}
