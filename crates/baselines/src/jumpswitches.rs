//! The JumpSwitches evaluation configuration.
//!
//! JumpSwitches replace each kernel indirect call with an inline chain of
//! compare-and-direct-call "switches" patched *at runtime* from observed
//! targets; unpromoted targets fall back to a retpoline, and multi-target
//! sites are periodically downgraded to a learning retpoline to re-learn
//! their target set — the behaviour the paper identifies as JumpSwitches'
//! weakness on multi-target-heavy workloads (§8.2, Table 4).
//!
//! The runtime dynamics are simulated by [`pibe_sim`]'s executor (see
//! [`JumpSwitchConfig`]); this module packages the evaluation setup:
//! a retpolines-hardened kernel whose forward edges use JumpSwitches.

use pibe_harden::DefenseSet;
use pibe_sim::{JumpSwitchConfig, SimConfig};

/// The simulator configuration for a JumpSwitches kernel: retpolines
/// protect whatever the switches miss (and returns stay *unprotected* —
/// JumpSwitches only supports forward-edge optimization, which is why the
/// paper's comparison is restricted to the retpolines-only configuration).
pub fn jumpswitch_sim_config(js: JumpSwitchConfig) -> SimConfig {
    SimConfig {
        defenses: DefenseSet::RETPOLINES,
        jumpswitch: Some(js),
        ..SimConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pibe_ir::{FuncId, FunctionBuilder, Module};
    use pibe_sim::{MapResolver, Simulator};

    /// §8.2: "For indirect calls with more than one common target, the
    /// JumpSwitch mechanism must be periodically put in a learning state" —
    /// multi-target sites accumulate learning-mode cycles; single-target
    /// sites settle and stay patched.
    #[test]
    fn multi_target_sites_pay_periodic_relearning() {
        let mut m = Module::new("m");
        let mk = |m: &mut Module, name: &str| {
            let mut b = FunctionBuilder::new(name, 0);
            b.ret();
            m.add_function(b.build())
        };
        let t0 = mk(&mut m, "t0");
        let t1 = mk(&mut m, "t1");
        let t2 = mk(&mut m, "t2");
        let site = m.fresh_site();
        let mut b = FunctionBuilder::new("root", 0);
        b.call_indirect(site, 0);
        b.ret();
        let root = m.add_function(b.build());

        let learn_cycles = |targets: Vec<(FuncId, u32)>| {
            let mut r = MapResolver::new();
            r.insert(site, targets);
            let mut cfg = jumpswitch_sim_config(JumpSwitchConfig::default());
            cfg.jumpswitch = Some(JumpSwitchConfig {
                relearn_period: 64,
                ..JumpSwitchConfig::default()
            });
            let mut sim = Simulator::new(&m, r, 11, cfg);
            for _ in 0..2000 {
                sim.call_entry(root).expect("runs");
            }
            sim.stats().jumpswitch_learn_cycles
        };
        let single = learn_cycles(vec![(t0, 1)]);
        let multi = learn_cycles(vec![(t0, 2), (t1, 1), (t2, 1)]);
        assert!(
            multi > 4 * single.max(1),
            "multi-target relearning dominates: {multi} vs {single}"
        );
    }

    #[test]
    fn config_pairs_retpolines_with_jumpswitches() {
        let cfg = jumpswitch_sim_config(JumpSwitchConfig::default());
        assert_eq!(cfg.defenses, DefenseSet::RETPOLINES);
        assert!(cfg.jumpswitch.is_some());
    }

    #[test]
    fn default_jumpswitch_has_bounded_slots() {
        let js = JumpSwitchConfig::default();
        assert!(js.max_slots <= 8, "inline chains are slot-limited");
        assert!(js.learn_calls > 0 && js.relearn_period > js.learn_calls);
    }
}
