//! The default-LLVM-style inliner baseline (§8.4).
//!
//! "The default inliner's bottom-up approach guarantees that it will visit
//! all call sites in the kernel call-graph. However, its inlining decisions
//! are made solely based on size complexity and inline hints."
//!
//! This implementation mirrors that shape: functions are visited in
//! bottom-up (callees-first) order; at each function, call sites are
//! inlined when the callee's `InlineCost` complexity is under a threshold —
//! LLVM's default threshold for ordinary sites, its hot-site threshold
//! (3 000) when the site has a nonzero profile count ("inline hints").
//! Crucially, *visit order is irrespective of profiling weight*: a cold
//! small callee inlines as readily as a hot one, so cold inlining can
//! deplete a caller's growth budget before the hot sites are reached — the
//! fluctuation the paper observed when raising LLVM's budget (§5.2).

use pibe_ir::{size, CallGraph, FuncId, Inst, Module, SiteId};
use pibe_passes::{inline_call_site, SiteWeights};
use serde::{Deserialize, Serialize};

/// Thresholds of the baseline inliner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LlvmInlinerConfig {
    /// Callee-cost threshold for ordinary (cold) sites — LLVM's default
    /// `-inline-threshold` of 225.
    pub default_threshold: u32,
    /// Callee-cost threshold for sites with profile hints — LLVM's
    /// hot-callsite threshold of 3 000 (§5.2).
    pub hot_threshold: u32,
    /// Caller growth cap, bounding pathological size explosions.
    pub caller_growth_cap: u32,
}

impl Default for LlvmInlinerConfig {
    fn default() -> Self {
        LlvmInlinerConfig {
            default_threshold: 225,
            hot_threshold: 3_000,
            caller_growth_cap: 15_000,
        }
    }
}

/// What the baseline inliner did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LlvmInlinerStats {
    /// Call sites inlined.
    pub inlined_sites: u64,
    /// Profiled weight of the inlined sites (for comparison with PIBE's
    /// `inlined_weight`; the baseline itself ignores weights).
    pub inlined_weight: u64,
    /// Sites visited but rejected.
    pub rejected_sites: u64,
}

/// Runs the baseline inliner over `module`. `weights` is consulted only as
/// the LLVM-style "hot hint" (count > 0 ⇒ hot threshold) and for
/// reporting — never for ordering.
pub fn run_llvm_inliner(
    module: &mut Module,
    weights: &SiteWeights,
    config: &LlvmInlinerConfig,
) -> LlvmInlinerStats {
    let graph = CallGraph::build(module);
    let order: Vec<FuncId> = graph.bottom_up_order();
    let mut stats = LlvmInlinerStats::default();

    for caller in order {
        if module.function(caller).attrs().optnone {
            continue;
        }
        // Work-list of direct call sites currently in the caller; sites
        // copied in by successful inlining are appended and revisited,
        // as LLVM's CallAnalyzer does.
        let mut worklist: Vec<(SiteId, FuncId)> = module
            .function(caller)
            .iter_insts()
            .filter_map(|i| match i {
                Inst::Call { site, callee, .. } => Some((*site, *callee)),
                _ => None,
            })
            .collect();

        let mut idx = 0;
        while idx < worklist.len() {
            let (site, callee) = worklist[idx];
            idx += 1;
            if callee == caller
                || graph.is_recursive(callee)
                || module.function(callee).attrs().noinline
                || module.function(callee).attrs().optnone
                || module.function(callee).attrs().inline_asm
            {
                stats.rejected_sites += 1;
                continue;
            }
            let callee_cost = size::function_cost(module.function(callee));
            let threshold = if weights.get(site) > 0 {
                config.hot_threshold
            } else {
                config.default_threshold
            };
            let caller_cost = size::function_cost(module.function(caller));
            if callee_cost > threshold
                || caller_cost.saturating_add(callee_cost) > config.caller_growth_cap
            {
                stats.rejected_sites += 1;
                continue;
            }
            match inline_call_site(module, caller, site) {
                Ok(info) => {
                    stats.inlined_sites += 1;
                    stats.inlined_weight += weights.get(site);
                    worklist.extend(info.copied_direct_sites);
                }
                Err(_) => stats.rejected_sites += 1,
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use pibe_ir::{FunctionBuilder, OpKind};
    use pibe_profile::Profile;

    /// root -> {hot_big, cold_small}: the weight-blind baseline inlines the
    /// cold small callee and rejects the hot big one — the opposite of what
    /// security wants.
    #[test]
    fn baseline_is_weight_blind() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("hot_big", 0);
        b.ops(OpKind::Alu, 120); // cost 605 > 225, <= 3000
        b.ret();
        let hot_big = m.add_function(b.build());
        let mut b = FunctionBuilder::new("cold_small", 0);
        b.ops(OpKind::Alu, 4);
        b.ret();
        let cold_small = m.add_function(b.build());

        let s_hot = m.fresh_site();
        let s_cold = m.fresh_site();
        let mut b = FunctionBuilder::new("root", 0);
        b.call(s_hot, hot_big, 0);
        b.call(s_cold, cold_small, 0);
        b.ret();
        m.add_function(b.build());

        // Only the big callee is hot — but give it *no* hint to model the
        // pure size-based default; then both thresholds apply by size.
        let weights = SiteWeights::new();
        let stats = run_llvm_inliner(&mut m, &weights, &LlvmInlinerConfig::default());
        assert_eq!(stats.inlined_sites, 1, "only the small callee inlines");
        assert_eq!(stats.rejected_sites, 1);
        m.verify().unwrap();
    }

    #[test]
    fn hot_hint_raises_the_threshold() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("biggish", 0);
        b.ops(OpKind::Alu, 120); // cost 605
        b.ret();
        let biggish = m.add_function(b.build());
        let s = m.fresh_site();
        let mut b = FunctionBuilder::new("root", 0);
        b.call(s, biggish, 0);
        b.ret();
        m.add_function(b.build());

        let mut p = Profile::new();
        p.record_direct(s);
        let weights = SiteWeights::from_profile(&p);
        let stats = run_llvm_inliner(&mut m, &weights, &LlvmInlinerConfig::default());
        assert_eq!(stats.inlined_sites, 1, "hot hint admits cost-605 callee");
    }

    #[test]
    fn bottom_up_order_collapses_chains() {
        // root -> mid -> leaf, all tiny: bottom-up visits mid first (leaf
        // inlines into mid), then root (grown mid still fits).
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("leaf", 0);
        b.ops(OpKind::Alu, 2);
        b.ret();
        let leaf = m.add_function(b.build());
        let s1 = m.fresh_site();
        let mut b = FunctionBuilder::new("mid", 0);
        b.call(s1, leaf, 0);
        b.ret();
        let mid = m.add_function(b.build());
        let s2 = m.fresh_site();
        let mut b = FunctionBuilder::new("root", 0);
        b.call(s2, mid, 0);
        b.ret();
        let root = m.add_function(b.build());

        let stats = run_llvm_inliner(&mut m, &SiteWeights::new(), &LlvmInlinerConfig::default());
        assert_eq!(stats.inlined_sites, 2);
        assert!(m
            .function(root)
            .iter_insts()
            .all(|i| !matches!(i, Inst::Call { .. })));
        m.verify().unwrap();
    }
}
