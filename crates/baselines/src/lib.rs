//! # pibe-baselines
//!
//! The two systems the paper compares PIBE against:
//!
//! * [`jumpswitches`] — JumpSwitches (Amit et al., USENIX ATC '19), the
//!   state-of-the-art *runtime* indirect-call promotion mechanism (§8.2).
//!   The runtime learning/patching dynamics live in the simulator
//!   ([`pibe_sim::JumpSwitchConfig`]); this module provides the evaluation
//!   configuration (retpoline-hardened image + JumpSwitch forward edges).
//! * [`llvm_inliner`] — LLVM's default (PGO) inliner: a bottom-up traversal
//!   whose "inlining decisions are made solely based on size complexity and
//!   inline hints" (§8.4), used to show that PIBE's hot-first *ordering* —
//!   not mere aggressiveness — delivers the win.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod jumpswitches;
pub mod llvm_inliner;

pub use jumpswitches::jumpswitch_sim_config;
pub use llvm_inliner::{run_llvm_inliner, LlvmInlinerConfig, LlvmInlinerStats};
