//! The plain-text side of the exporter: aggregation of the span forest
//! into hierarchical self/total rows.

use crate::TraceData;
use std::collections::BTreeMap;

/// One aggregated row of the hierarchical summary: all spans sharing the
/// same name *path* (root name / child name / ...), across every track.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SummaryRow {
    /// Slash-separated name path from the root span (e.g.
    /// `pipeline.build/stage.icp`).
    pub path: String,
    /// The span name (the last path component).
    pub name: String,
    /// Nesting depth (0 for root rows).
    pub depth: u16,
    /// Number of spans aggregated into this row.
    pub count: u64,
    /// Total wall-clock nanoseconds (including children).
    pub total_ns: u64,
    /// Nanoseconds not attributed to any child span.
    pub self_ns: u64,
}

impl SummaryRow {
    /// Mean span duration in nanoseconds.
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }
}

impl TraceData {
    /// Aggregates the span forest into hierarchical rows: one per distinct
    /// name path, with call counts and total/self times summed across all
    /// tracks. Rows come back in depth-first path order (a parent row
    /// immediately precedes its children), deterministically.
    pub fn summary(&self) -> Vec<SummaryRow> {
        // Resolve each span's name path by walking parent links per track.
        let mut index: BTreeMap<(u32, u64), usize> = BTreeMap::new();
        for (i, s) in self.spans.iter().enumerate() {
            index.insert((s.track, s.id), i);
        }
        let mut paths: Vec<String> = Vec::with_capacity(self.spans.len());
        for s in &self.spans {
            let mut parts = vec![s.name.as_ref()];
            let mut parent = s.parent;
            while parent != 0 {
                let Some(&pi) = index.get(&(s.track, parent)) else {
                    break;
                };
                parts.push(self.spans[pi].name.as_ref());
                parent = self.spans[pi].parent;
            }
            parts.reverse();
            paths.push(parts.join("/"));
        }

        // Children-total per span, to compute self time.
        let mut child_ns: Vec<u64> = vec![0; self.spans.len()];
        for s in &self.spans {
            if s.parent != 0 {
                if let Some(&pi) = index.get(&(s.track, s.parent)) {
                    child_ns[pi] = child_ns[pi].saturating_add(s.dur_ns);
                }
            }
        }

        let mut rows: BTreeMap<String, SummaryRow> = BTreeMap::new();
        for (i, s) in self.spans.iter().enumerate() {
            let row = rows.entry(paths[i].clone()).or_insert_with(|| SummaryRow {
                path: paths[i].clone(),
                name: s.name.to_string(),
                depth: s.depth,
                count: 0,
                total_ns: 0,
                self_ns: 0,
            });
            row.count += 1;
            row.total_ns = row.total_ns.saturating_add(s.dur_ns);
            row.self_ns = row
                .self_ns
                .saturating_add(s.dur_ns.saturating_sub(child_ns[i]));
        }

        // BTreeMap iteration over slash-separated paths is depth-first
        // ("a" < "a/b" < "a/c" < "b"), which is exactly the render order.
        rows.into_values().collect()
    }

    /// Renders [`TraceData::summary`] plus counters and histograms as an
    /// indented plain-text block (no table machinery — callers that want
    /// aligned tables feed the rows into their own renderer).
    pub fn summary_text(&self) -> String {
        use std::fmt::Write as _;
        let ms = |ns: u64| ns as f64 / 1e6;
        let mut out = String::new();
        let _ = writeln!(out, "span (count)  total ms  self ms");
        for row in self.summary() {
            let _ = writeln!(
                out,
                "{:indent$}{} ({})  {:.2}  {:.2}",
                "",
                row.name,
                row.count,
                ms(row.total_ns),
                ms(row.self_ns),
                indent = 2 * row.depth as usize
            );
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(
                out,
                "hist {name}: n={} min={} mean={:.1} max={}",
                h.count,
                h.min,
                h.mean(),
                h.max
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SpanRecord;

    fn span(track: u32, id: u64, parent: u64, depth: u16, name: &str, dur: u64) -> SpanRecord {
        SpanRecord {
            track,
            id,
            parent,
            depth,
            name: name.to_string().into(),
            start_ns: 0,
            dur_ns: dur,
            args: Vec::new(),
        }
    }

    #[test]
    fn aggregates_self_and_total_across_tracks() {
        let data = TraceData {
            tracks: vec!["a".into(), "b".into()],
            spans: vec![
                span(0, 1, 0, 0, "build", 100),
                span(0, 2, 1, 1, "icp", 30),
                span(0, 3, 1, 1, "inline", 50),
                span(1, 1, 0, 0, "build", 200),
                span(1, 2, 1, 1, "icp", 80),
            ],
            ..TraceData::default()
        };
        let rows = data.summary();
        let paths: Vec<&str> = rows.iter().map(|r| r.path.as_str()).collect();
        assert_eq!(paths, vec!["build", "build/icp", "build/inline"]);
        let build = &rows[0];
        assert_eq!((build.count, build.total_ns), (2, 300));
        assert_eq!(build.self_ns, 300 - 30 - 50 - 80);
        let icp = &rows[1];
        assert_eq!(
            (icp.count, icp.total_ns, icp.self_ns, icp.depth),
            (2, 110, 110, 1)
        );
        assert!((icp.mean_ns() - 55.0).abs() < 1e-9);
        let text = data.summary_text();
        assert!(text.contains("build (2)"));
        assert!(text.contains("  icp (2)"));
    }
}
