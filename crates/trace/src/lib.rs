//! # pibe-trace
//!
//! Zero-dependency structured tracing for the PIBE pipeline: nested spans,
//! instant events, counters, and power-of-two histograms, recorded per
//! thread and exported either as Chrome trace-event JSON (loadable in
//! [Perfetto](https://ui.perfetto.dev) or `chrome://tracing`, one track per
//! thread) or as a hierarchical plain-text summary.
//!
//! ## Design
//!
//! * **Off by default, near-zero disabled cost.** Every recording entry
//!   point starts with a single relaxed load of a `static` [`AtomicBool`];
//!   when tracing is disabled nothing else runs and no argument is
//!   materialised (the `*_args` variants take closures evaluated only when
//!   enabled). Enable programmatically with [`set_enabled`] or through the
//!   `PIBE_TRACE=1` environment variable via [`init_from_env`].
//! * **Per-thread buffers, short mutex.** Each thread records into a
//!   thread-local buffer; the buffer is flushed into the process-wide
//!   collector under a mutex only when the thread's span stack empties (or
//!   the thread exits), so concurrent builds never contend per record.
//! * **Deterministic structure.** Span ids are per-track sequence numbers
//!   assigned in open order and parent links follow the thread's span
//!   stack, so for a fixed seed and configuration two runs produce an
//!   identical span tree (timestamps differ, structure does not).
//!
//! ## Example
//!
//! ```
//! pibe_trace::set_enabled(true);
//! {
//!     let _build = pibe_trace::span("build");
//!     {
//!         let _stage = pibe_trace::span_args("stage.icp", || {
//!             vec![("sites", pibe_trace::Value::from(3u64))]
//!         });
//!         pibe_trace::event("icp.promote");
//!     }
//!     pibe_trace::record_value("build.bytes", 4096);
//! }
//! let data = pibe_trace::take();
//! pibe_trace::set_enabled(false);
//! assert_eq!(data.spans.len(), 2);
//! assert!(data.to_chrome_json().contains("\"ph\":\"X\""));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod chrome;
mod summary;

pub use summary::SummaryRow;

use std::borrow::Cow;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Span, event, and counter names: static strings in the common case,
/// owned strings for dynamically labelled tracks and tables.
pub type Name = Cow<'static, str>;

/// One argument value attached to a span or event.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float.
    F64(f64),
    /// A string.
    Str(String),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(v as u64)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::U64(v as u64)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// Arguments attached to a span or event.
pub type Args = Vec<(&'static str, Value)>;

/// One closed span: a named interval on a track, with its position in the
/// track's span tree.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// The track (thread) the span ran on.
    pub track: u32,
    /// Per-track sequence number, assigned in open order starting at 1.
    pub id: u64,
    /// Id of the enclosing span on the same track, or 0 for a root span.
    pub parent: u64,
    /// Nesting depth (0 for a root span).
    pub depth: u16,
    /// Span name.
    pub name: Name,
    /// Start, nanoseconds since the tracer epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Arguments captured when the span opened.
    pub args: Args,
}

/// One instant event.
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    /// The track (thread) the event fired on.
    pub track: u32,
    /// Event name.
    pub name: Name,
    /// Timestamp, nanoseconds since the tracer epoch.
    pub ts_ns: u64,
    /// Arguments captured with the event.
    pub args: Args,
}

/// One counter sample (an absolute value at a point in time).
#[derive(Debug, Clone, PartialEq)]
pub struct CounterRecord {
    /// The track (thread) the sample was taken on.
    pub track: u32,
    /// Counter name.
    pub name: Name,
    /// Timestamp, nanoseconds since the tracer epoch.
    pub ts_ns: u64,
    /// Sampled value.
    pub value: u64,
}

/// Aggregated power-of-two histogram of `u64` samples.
///
/// Bucket 0 counts zero-valued samples; bucket `i >= 1` counts samples `v`
/// with `2^(i-1) <= v < 2^i`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    /// Number of samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Power-of-two buckets (see the type docs for the bucket rule).
    pub buckets: Vec<u64>,
}

impl Histogram {
    /// Adds one sample, updating count/sum/min/max and the power-of-two
    /// bucket the value falls in.
    pub fn record(&mut self, value: u64) {
        if self.count == 0 || value < self.min {
            self.min = value;
        }
        self.max = self.max.max(value);
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        let bucket = if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        };
        if self.buckets.len() <= bucket {
            self.buckets.resize(bucket + 1, 0);
        }
        self.buckets[bucket] += 1;
    }

    fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 || other.min < self.min {
            self.min = other.min;
        }
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (b, n) in other.buckets.iter().enumerate() {
            self.buckets[b] += n;
        }
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A drained or cloned snapshot of everything the tracer recorded.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceData {
    /// Track names, indexed by the `track` field of the records.
    pub tracks: Vec<String>,
    /// Closed spans, sorted by `(track, id)` (per-track open order).
    pub spans: Vec<SpanRecord>,
    /// Instant events, sorted by `(track, ts_ns)`.
    pub events: Vec<EventRecord>,
    /// Counter samples, sorted by `(track, ts_ns)`.
    pub counters: Vec<CounterRecord>,
    /// Histograms, keyed by name (deterministic order).
    pub histograms: Vec<(String, Histogram)>,
}

impl TraceData {
    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
            && self.events.is_empty()
            && self.counters.is_empty()
            && self.histograms.is_empty()
    }

    /// Instant events named `name`, across all tracks.
    pub fn event_count(&self, name: &str) -> usize {
        self.events.iter().filter(|e| e.name == name).count()
    }

    /// The final sampled value of counter `name` (counters are absolute
    /// values, so the chronologically last sample is the total); `None`
    /// when the counter was never sampled.
    pub fn last_counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .filter(|c| c.name == name)
            .max_by_key(|c| c.ts_ns)
            .map(|c| c.value)
    }

    /// The structural skeleton of the span forest: one `(track, depth,
    /// name)` triple per span in per-track open order. Timestamps and ids
    /// are excluded, so for a deterministic workload two runs compare
    /// equal.
    pub fn structure(&self) -> Vec<(String, u16, String)> {
        self.spans
            .iter()
            .map(|s| {
                let track = self
                    .tracks
                    .get(s.track as usize)
                    .cloned()
                    .unwrap_or_default();
                (track, s.depth, s.name.to_string())
            })
            .collect()
    }

    fn sort(&mut self) {
        self.spans.sort_by_key(|s| (s.track, s.id));
        self.events.sort_by_key(|e| (e.track, e.ts_ns));
        self.counters.sort_by_key(|c| (c.track, c.ts_ns));
    }
}

// ---------------------------------------------------------------------------
// Global state.

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether tracing is currently enabled. A single relaxed atomic load — the
/// entire disabled-path cost of every recording entry point.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns tracing on or off process-wide. Spans already open keep recording
/// until their guard drops.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Enables tracing when the `PIBE_TRACE` environment variable is set to
/// `1` (or `true`/`on`); returns whether tracing is enabled afterwards.
pub fn init_from_env() -> bool {
    if let Ok(v) = std::env::var("PIBE_TRACE") {
        if matches!(v.trim(), "1" | "true" | "on") {
            set_enabled(true);
        }
    }
    enabled()
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

#[derive(Default)]
struct Collector {
    tracks: Vec<String>,
    spans: Vec<SpanRecord>,
    events: Vec<EventRecord>,
    counters: Vec<CounterRecord>,
    hists: BTreeMap<String, Histogram>,
}

fn collector() -> &'static Mutex<Collector> {
    static COLLECTOR: OnceLock<Mutex<Collector>> = OnceLock::new();
    COLLECTOR.get_or_init(|| Mutex::new(Collector::default()))
}

// ---------------------------------------------------------------------------
// Per-thread recording.

struct OpenSpan {
    id: u64,
    parent: u64,
    depth: u16,
    name: Name,
    args: Args,
    start_ns: u64,
}

/// The thread's recording state. Buffers are flushed into the global
/// collector when the span stack empties and when the thread exits.
struct ThreadTrack {
    track: u32,
    next_span: u64,
    open: Vec<OpenSpan>,
    spans: Vec<SpanRecord>,
    events: Vec<EventRecord>,
    counters: Vec<CounterRecord>,
    hists: BTreeMap<String, Histogram>,
}

impl ThreadTrack {
    fn register(name: Option<String>) -> ThreadTrack {
        let mut c = collector().lock().unwrap();
        let track = c.tracks.len() as u32;
        c.tracks
            .push(name.unwrap_or_else(|| format!("thread-{track}")));
        ThreadTrack {
            track,
            next_span: 1,
            open: Vec::new(),
            spans: Vec::new(),
            events: Vec::new(),
            counters: Vec::new(),
            hists: BTreeMap::new(),
        }
    }

    fn flush(&mut self) {
        if self.spans.is_empty()
            && self.events.is_empty()
            && self.counters.is_empty()
            && self.hists.is_empty()
        {
            return;
        }
        let mut c = collector().lock().unwrap();
        c.spans.append(&mut self.spans);
        c.events.append(&mut self.events);
        c.counters.append(&mut self.counters);
        for (name, h) in std::mem::take(&mut self.hists) {
            c.hists.entry(name).or_default().merge(&h);
        }
    }

    fn maybe_flush(&mut self) {
        if self.open.is_empty() {
            self.flush();
        }
    }

    fn open_span(&mut self, name: Name, args: Args) -> u64 {
        let id = self.next_span;
        self.next_span += 1;
        let parent = self.open.last().map_or(0, |s| s.id);
        let depth = self.open.len() as u16;
        self.open.push(OpenSpan {
            id,
            parent,
            depth,
            name,
            args,
            start_ns: now_ns(),
        });
        id
    }

    /// Closes the open span `id`, closing any deeper spans first (a guard
    /// leaked across an enable/disable toggle must not corrupt the stack).
    fn close_span(&mut self, id: u64) {
        let Some(pos) = self.open.iter().rposition(|s| s.id == id) else {
            return;
        };
        let end = now_ns();
        while self.open.len() > pos {
            let s = self.open.pop().expect("stack is non-empty");
            self.spans.push(SpanRecord {
                track: self.track,
                id: s.id,
                parent: s.parent,
                depth: s.depth,
                name: s.name,
                start_ns: s.start_ns,
                dur_ns: end.saturating_sub(s.start_ns),
                args: s.args,
            });
        }
        self.maybe_flush();
    }
}

impl Drop for ThreadTrack {
    fn drop(&mut self) {
        // Close anything still open at thread exit, then flush.
        let end = now_ns();
        while let Some(s) = self.open.pop() {
            self.spans.push(SpanRecord {
                track: self.track,
                id: s.id,
                parent: s.parent,
                depth: s.depth,
                name: s.name,
                start_ns: s.start_ns,
                dur_ns: end.saturating_sub(s.start_ns),
                args: s.args,
            });
        }
        self.flush();
    }
}

thread_local! {
    static TRACK: RefCell<Option<ThreadTrack>> = const { RefCell::new(None) };
}

/// Runs `f` with the thread's track, registering it on first use. Returns
/// `None` during thread teardown (the thread-local is gone).
fn with_track<R>(f: impl FnOnce(&mut ThreadTrack) -> R) -> Option<R> {
    TRACK
        .try_with(|cell| {
            let mut slot = cell.borrow_mut();
            let track = slot.get_or_insert_with(|| ThreadTrack::register(None));
            f(track)
        })
        .ok()
}

/// Names the current thread's track (e.g. `worker-3`); shows up as the
/// thread name in Perfetto and in summaries. Registers the track if the
/// thread has not recorded yet.
pub fn set_track_name(name: impl Into<String>) {
    if !enabled() {
        return;
    }
    let name = name.into();
    let _ = with_track(|t| {
        let mut c = collector().lock().unwrap();
        if let Some(slot) = c.tracks.get_mut(t.track as usize) {
            *slot = name;
        }
    });
}

// ---------------------------------------------------------------------------
// Recording API.

/// Closes its span when dropped. Returned by [`span`] and [`span_args`];
/// inert when tracing was disabled at open time.
#[derive(Debug)]
#[must_use = "a span guard records its span when dropped"]
pub struct SpanGuard {
    id: u64,
}

impl SpanGuard {
    const INERT: SpanGuard = SpanGuard { id: 0 };
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.id != 0 {
            let _ = with_track(|t| t.close_span(self.id));
        }
    }
}

/// Opens a span; it closes (and is recorded) when the returned guard drops.
#[inline]
pub fn span(name: impl Into<Name>) -> SpanGuard {
    if !enabled() {
        return SpanGuard::INERT;
    }
    open(name.into(), Vec::new())
}

/// Opens a span with arguments. `args` is only evaluated when tracing is
/// enabled, so argument formatting is free on the disabled path.
#[inline]
pub fn span_args(name: impl Into<Name>, args: impl FnOnce() -> Args) -> SpanGuard {
    if !enabled() {
        return SpanGuard::INERT;
    }
    open(name.into(), args())
}

fn open(name: Name, args: Args) -> SpanGuard {
    with_track(|t| SpanGuard {
        id: t.open_span(name, args),
    })
    .unwrap_or(SpanGuard::INERT)
}

/// Records an instant event.
#[inline]
pub fn event(name: impl Into<Name>) {
    if !enabled() {
        return;
    }
    record_event(name.into(), Vec::new());
}

/// Records an instant event with arguments; `args` is only evaluated when
/// tracing is enabled.
#[inline]
pub fn event_args(name: impl Into<Name>, args: impl FnOnce() -> Args) {
    if !enabled() {
        return;
    }
    record_event(name.into(), args());
}

fn record_event(name: Name, args: Args) {
    let ts_ns = now_ns();
    let _ = with_track(|t| {
        t.events.push(EventRecord {
            track: t.track,
            name,
            ts_ns,
            args,
        });
        t.maybe_flush();
    });
}

/// Records a counter sample (an absolute value at the current time),
/// rendered as a counter track in Perfetto.
#[inline]
pub fn counter(name: impl Into<Name>, value: u64) {
    if !enabled() {
        return;
    }
    let name = name.into();
    let ts_ns = now_ns();
    let _ = with_track(|t| {
        t.counters.push(CounterRecord {
            track: t.track,
            name,
            ts_ns,
            value,
        });
        t.maybe_flush();
    });
}

/// Records one sample into the named power-of-two [`Histogram`].
#[inline]
pub fn record_value(name: impl Into<Name>, value: u64) {
    if !enabled() {
        return;
    }
    let name = name.into();
    let _ = with_track(|t| {
        t.hists.entry(name.into_owned()).or_default().record(value);
        t.maybe_flush();
    });
}

/// Flushes the current thread's buffers into the global collector even if
/// spans are still open (open spans keep recording).
pub fn flush_thread() {
    let _ = with_track(|t| t.flush());
}

/// Drains and returns everything recorded so far (flushing the current
/// thread first). Buffers of *other* threads that are mid-span stay local
/// until their top-level span closes or the thread exits.
pub fn take() -> TraceData {
    flush_thread();
    let mut c = collector().lock().unwrap();
    let mut data = TraceData {
        tracks: c.tracks.clone(),
        spans: std::mem::take(&mut c.spans),
        events: std::mem::take(&mut c.events),
        counters: std::mem::take(&mut c.counters),
        histograms: std::mem::take(&mut c.hists).into_iter().collect(),
    };
    drop(c);
    data.sort();
    data
}

/// Clones everything recorded so far without draining it (flushing the
/// current thread first).
pub fn snapshot() -> TraceData {
    flush_thread();
    let c = collector().lock().unwrap();
    let mut data = TraceData {
        tracks: c.tracks.clone(),
        spans: c.spans.clone(),
        events: c.events.clone(),
        counters: c.counters.clone(),
        histograms: c.hists.clone().into_iter().collect(),
    };
    drop(c);
    data.sort();
    data
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The tracer is process-global; tests that record serialize on this.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn event_counts_and_final_counter_values_aggregate() {
        let _g = lock();
        set_enabled(true);
        {
            let _s = span("epoch");
            event("serve.quarantine");
            event("serve.quarantine");
            event("serve.fast_path");
            counter("serve.quarantine_total", 1);
            counter("serve.quarantine_total", 2);
        }
        let data = take();
        set_enabled(false);
        assert_eq!(data.event_count("serve.quarantine"), 2);
        assert_eq!(data.event_count("serve.fast_path"), 1);
        assert_eq!(data.event_count("absent"), 0);
        assert_eq!(data.last_counter("serve.quarantine_total"), Some(2));
        assert_eq!(data.last_counter("absent"), None);
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let _g = lock();
        set_enabled(false);
        let _ = take();
        {
            let _s = span("ignored");
            event("ignored");
            counter("ignored", 1);
            record_value("ignored", 1);
        }
        assert!(take().is_empty());
    }

    #[test]
    fn spans_nest_and_ids_are_deterministic() {
        let _g = lock();
        set_enabled(false);
        let _ = take();
        set_enabled(true);
        {
            let _root = span("root");
            {
                let _child = span_args("child", || vec![("k", Value::from(7u64))]);
                let _grand = span("grand");
            }
            let _second = span("second");
        }
        set_enabled(false);
        let data = take();
        let by_name: Vec<(&str, u64, u64, u16)> = data
            .spans
            .iter()
            .map(|s| (s.name.as_ref(), s.id, s.parent, s.depth))
            .collect();
        assert_eq!(
            by_name,
            vec![
                ("root", 1, 0, 0),
                ("child", 2, 1, 1),
                ("grand", 3, 2, 2),
                ("second", 4, 1, 1),
            ]
        );
        assert_eq!(data.spans[1].args, vec![("k", Value::U64(7))]);
        // Parents fully contain their children.
        let root = &data.spans[0];
        let child = &data.spans[1];
        assert!(child.start_ns >= root.start_ns);
        assert!(child.start_ns + child.dur_ns <= root.start_ns + root.dur_ns);
    }

    #[test]
    fn events_counters_histograms_round_trip() {
        let _g = lock();
        set_enabled(false);
        let _ = take();
        set_enabled(true);
        event_args("hit", || vec![("n", Value::from(2u64))]);
        counter("queue", 5);
        record_value("cost", 0);
        record_value("cost", 1);
        record_value("cost", 1000);
        set_enabled(false);
        let data = take();
        assert_eq!(data.events.len(), 1);
        assert_eq!(data.counters[0].value, 5);
        let (name, h) = &data.histograms[0];
        assert_eq!(name, "cost");
        assert_eq!((h.count, h.min, h.max, h.sum), (3, 0, 1000, 1001));
        assert_eq!(h.buckets[0], 1, "zero bucket");
        assert_eq!(h.buckets[1], 1, "value 1 in bucket [1,2)");
        assert_eq!(h.buckets[10], 1, "1000 in bucket [512,1024)");
        assert!((h.mean() - 1001.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn worker_threads_get_their_own_tracks() {
        let _g = lock();
        set_enabled(false);
        let _ = take();
        set_enabled(true);
        let handles: Vec<_> = (0..2)
            .map(|i| {
                std::thread::spawn(move || {
                    set_track_name(format!("worker-{i}"));
                    let _s = span("work");
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        set_enabled(false);
        let data = take();
        assert_eq!(data.spans.len(), 2);
        let mut names: Vec<String> = data
            .spans
            .iter()
            .map(|s| data.tracks[s.track as usize].clone())
            .collect();
        names.sort();
        assert_eq!(names, vec!["worker-0", "worker-1"]);
        // Each track numbered its spans independently from 1.
        assert!(data.spans.iter().all(|s| s.id == 1 && s.parent == 0));
    }

    #[test]
    fn snapshot_preserves_take_drains() {
        let _g = lock();
        set_enabled(false);
        let _ = take();
        set_enabled(true);
        {
            let _s = span("s");
        }
        set_enabled(false);
        let snap = snapshot();
        assert_eq!(snap.spans.len(), 1);
        let taken = take();
        assert_eq!(taken.spans.len(), 1);
        assert!(take().is_empty(), "take drains");
    }
}
