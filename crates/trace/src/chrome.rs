//! Chrome trace-event JSON export.
//!
//! Emits the [trace-event format](https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU)
//! consumed by Perfetto and `chrome://tracing`: one `X` (complete) event
//! per span, `i` (instant) events, `C` counter samples, and `M` metadata
//! events naming the process and one thread per tracer track. Written by
//! hand — this crate has no dependencies — with full string escaping.

use crate::{Args, TraceData, Value};
use std::fmt::Write as _;

/// Escapes `s` into `out` as a JSON string body (no surrounding quotes).
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn push_str_field(out: &mut String, key: &str, value: &str) {
    out.push('"');
    escape_into(out, key);
    out.push_str("\":\"");
    escape_into(out, value);
    out.push('"');
}

fn push_value(out: &mut String, value: &Value) {
    match value {
        Value::U64(v) => {
            let _ = write!(out, "{v}");
        }
        Value::I64(v) => {
            let _ = write!(out, "{v}");
        }
        Value::F64(v) if v.is_finite() => {
            let _ = write!(out, "{v}");
        }
        Value::F64(v) => {
            // JSON has no NaN/Inf; stringify them.
            let _ = write!(out, "\"{v}\"");
        }
        Value::Str(s) => {
            out.push('"');
            escape_into(out, s);
            out.push('"');
        }
    }
}

fn push_args(out: &mut String, args: &Args) {
    out.push_str(",\"args\":{");
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_into(out, k);
        out.push_str("\":");
        push_value(out, v);
    }
    out.push('}');
}

/// Microsecond timestamp with nanosecond resolution, as the format expects.
fn us(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1000.0)
}

impl TraceData {
    /// Renders the trace as a Chrome trace-event JSON document
    /// (`{"traceEvents": [...]}`), loadable in Perfetto or
    /// `chrome://tracing`. Each tracer track becomes one named thread of a
    /// single `pibe` process.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(
            256 + 160 * (self.spans.len() + self.events.len() + self.counters.len()),
        );
        out.push_str("{\"traceEvents\":[\n");
        let mut first = true;
        let mut sep = |out: &mut String| {
            if !first {
                out.push_str(",\n");
            }
            first = false;
        };

        sep(&mut out);
        out.push_str(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
             \"args\":{\"name\":\"pibe\"}}",
        );
        for (tid, name) in self.tracks.iter().enumerate() {
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"args\":{{"
            );
            push_str_field(&mut out, "name", name);
            out.push_str("}}");
        }

        for s in &self.spans {
            sep(&mut out);
            out.push('{');
            push_str_field(&mut out, "name", &s.name);
            let _ = write!(
                out,
                ",\"cat\":\"pibe\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{}",
                s.track,
                us(s.start_ns),
                us(s.dur_ns)
            );
            push_args(&mut out, &s.args);
            out.push('}');
        }

        for e in &self.events {
            sep(&mut out);
            out.push('{');
            push_str_field(&mut out, "name", &e.name);
            let _ = write!(
                out,
                ",\"cat\":\"pibe\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{},\"ts\":{}",
                e.track,
                us(e.ts_ns)
            );
            push_args(&mut out, &e.args);
            out.push('}');
        }

        for c in &self.counters {
            sep(&mut out);
            out.push('{');
            push_str_field(&mut out, "name", &c.name);
            let _ = write!(
                out,
                ",\"ph\":\"C\",\"pid\":1,\"tid\":{},\"ts\":{},\"args\":{{\"value\":{}}}",
                c.track,
                us(c.ts_ns),
                c.value
            );
            out.push('}');
        }

        out.push_str("\n]}\n");
        out
    }

    /// Writes [`TraceData::to_chrome_json`] to `path`.
    ///
    /// # Errors
    /// Any I/O error from creating or writing the file.
    pub fn write_chrome_json(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_chrome_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SpanRecord;

    fn data() -> TraceData {
        TraceData {
            tracks: vec!["main".into(), "worker \"w\"".into()],
            spans: vec![SpanRecord {
                track: 0,
                id: 1,
                parent: 0,
                depth: 0,
                name: "build".into(),
                start_ns: 1500,
                dur_ns: 2500,
                args: vec![
                    ("label", Value::Str("a\"b\\c\n".into())),
                    ("n", Value::U64(3)),
                    ("x", Value::F64(0.5)),
                ],
            }],
            ..TraceData::default()
        }
    }

    #[test]
    fn emits_metadata_spans_and_escapes() {
        let json = data().to_chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("worker \\\"w\\\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":1.500"));
        assert!(json.contains("\"dur\":2.500"));
        assert!(json.contains("a\\\"b\\\\c\\n"));
        assert!(json.contains("\"n\":3"));
        assert!(json.contains("\"x\":0.5"));
    }

    #[test]
    fn non_finite_floats_stay_valid_json() {
        let mut d = data();
        d.spans[0].args = vec![("bad", Value::F64(f64::NAN))];
        let json = d.to_chrome_json();
        assert!(json.contains("\"bad\":\"NaN\""));
    }
}
